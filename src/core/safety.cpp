#include "core/safety.hpp"

#include "support/error.hpp"

namespace tpdf::core {

using graph::ActorId;
using graph::Graph;
using symbolic::Expr;

namespace {

/// Checks Equation 9 on one channel between the control actor and a
/// neighbour.  Returns an empty string on success, a diagnostic otherwise.
std::string checkChannel(const graph::GraphView& view,
                         const graph::Channel& c, bool controlIsProducer,
                         const Expr& qLNeighbour) {
  const graph::PortId ctlPort = controlIsProducer ? c.src : c.dst;
  const graph::PortId actorPort = controlIsProducer ? c.dst : c.src;
  try {
    const Expr ctlSide =
        view.effectiveRates(ctlPort).cumulative(std::int64_t{1});
    const Expr actorSide =
        view.effectiveRates(actorPort).cumulative(qLNeighbour);
    if (ctlSide != actorSide) {
      return "channel '" + c.name + "': control transfers " +
             ctlSide.toString() + " token(s) per firing but its area " +
             "transfers " + actorSide.toString() + " per local iteration";
    }
  } catch (const support::Error& e) {
    return "channel '" + c.name + "': " + e.what();
  }
  return "";
}

RateSafetyReport checkRateSafetyOver(const graph::GraphView& view,
                                     const csdf::RepetitionVector& rv) {
  const Graph& g = view.graph();
  RateSafetyReport report;
  if (!rv.consistent) {
    report.diagnostic = "graph is not rate consistent: " + rv.diagnostic;
    return report;
  }

  report.safe = true;
  for (const graph::Actor& actor : g.actors()) {
    if (actor.kind != graph::ActorKind::Control) continue;

    ControlSafety cs;
    cs.control = actor.id;
    cs.area = controlArea(view, actor.id);
    cs.local = localSolution(g, rv, cs.area.all);
    if (!cs.local.ok) {
      cs.diagnostic = cs.local.diagnostic;
      report.perControl.push_back(std::move(cs));
      report.safe = false;
      continue;
    }

    // The control actor must fire exactly once per local iteration.
    bool ok = true;
    const auto perLocal = rv.qOf(actor.id).divideExact(cs.local.qG);
    if (!perLocal) {
      cs.diagnostic = "control firing count " + rv.qOf(actor.id).toString() +
                      " is not a multiple of the local iteration gcd " +
                      cs.local.qG.toString();
      ok = false;
    } else {
      cs.firingsPerLocalIteration = *perLocal;
      if (!perLocal->isOne()) {
        cs.diagnostic = "control actor '" + actor.name + "' fires " +
                        perLocal->toString() +
                        " times per local iteration of its area (must be 1)";
        ok = false;
      }
    }

    // Equation 9 on every channel between the control actor and its
    // predecessors / successors.
    if (ok) {
      for (graph::ChannelId cid : view.outChannels(actor.id)) {
        const graph::Channel& c = g.channel(cid);
        const ActorId neighbour = view.destActor(cid);
        if (neighbour == actor.id) continue;  // self-loop: no Eq. 9 form
        const std::string err =
            checkChannel(view, c, /*controlIsProducer=*/true,
                         cs.local.of(neighbour));
        if (!err.empty()) {
          cs.diagnostic = err;
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      for (graph::ChannelId cid : view.inChannels(actor.id)) {
        const graph::Channel& c = g.channel(cid);
        const ActorId neighbour = view.sourceActor(cid);
        if (neighbour == actor.id) continue;  // self-loop: no Eq. 9 form
        const std::string err =
            checkChannel(view, c, /*controlIsProducer=*/false,
                         cs.local.of(neighbour));
        if (!err.empty()) {
          cs.diagnostic = err;
          ok = false;
          break;
        }
      }
    }

    cs.safe = ok;
    if (!ok) {
      report.safe = false;
      if (report.diagnostic.empty()) report.diagnostic = cs.diagnostic;
    }
    report.perControl.push_back(std::move(cs));
  }
  return report;
}

}  // namespace

RateSafetyReport checkRateSafety(const Graph& g,
                                 const csdf::RepetitionVector& rv) {
  return checkRateSafetyOver(graph::GraphView(g), rv);
}

RateSafetyReport checkRateSafety(const AnalysisContext& ctx) {
  return checkRateSafetyOver(ctx.view(), ctx.repetition());
}

support::json::Value RateSafetyReport::toJson(const Graph& g) const {
  auto doc = support::json::Value::object();
  doc.set("safe", safe);
  if (!diagnostic.empty()) doc.set("diagnostic", diagnostic);
  auto controls = support::json::Value::array();
  for (const ControlSafety& cs : perControl) {
    auto entry = support::json::Value::object();
    entry.set("control", g.actor(cs.control).name);
    entry.set("safe", cs.safe);
    if (!cs.diagnostic.empty()) entry.set("diagnostic", cs.diagnostic);
    auto area = support::json::Value::array();
    for (const graph::ActorId a : cs.area.all) {
      area.push(g.actor(a).name);
    }
    entry.set("area", std::move(area));
    if (cs.local.ok) {
      entry.set("qG", cs.local.qG.toString());
    }
    entry.set("firingsPerLocalIteration",
              cs.firingsPerLocalIteration.toString());
    controls.push(std::move(entry));
  }
  doc.set("controls", std::move(controls));
  return doc;
}

}  // namespace tpdf::core
