// The TPDF model of computation (Definition 2 of the paper).
//
// A TpdfGraph is a dataflow Graph plus the TPDF-specific metadata:
// kernel roles (plain / Select-duplicate / Transaction), the mode table
// addressed by control tokens, and control-actor kinds (regular / clock).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"

namespace tpdf::core {

/// The four kernel modes of Definition 2.
enum class Mode {
  /// Select exactly one data input (or output).
  SelectOne,
  /// Select a subset of the data inputs (outputs).
  SelectMany,
  /// Select the available data input with the highest port priority; used
  /// by Transaction for deadline-driven choice (Section II-B).
  HighestPriority,
  /// Wait until all data inputs are available (plain dataflow behaviour).
  WaitAll,
};

std::string toString(Mode m);

/// Distinguished data-distribution kernels of Section II-B.
enum class KernelRole {
  Plain,
  /// 1 input, n outputs; each token is copied to the currently enabled
  /// combination of outputs.
  SelectDuplicate,
  /// n inputs, 1 output; atomically selects a predefined number of tokens
  /// from one or several inputs (speculation, redundancy with vote,
  /// highest priority at a deadline, active-path selection).
  Transaction,
};

std::string toString(KernelRole r);

/// Control actors are regular (fire on their input tokens) or clocks
/// (watchdog timers emitting a control token on every timeout).
enum class ControlKind { Regular, Clock };

/// One entry of a kernel's mode table.  A control token carrying value i
/// makes the kernel fire in mode spec i.  Empty port lists mean "all
/// ports of that direction".
struct ModeSpec {
  std::string name;
  Mode mode = Mode::WaitAll;
  std::vector<graph::PortId> activeInputs;
  std::vector<graph::PortId> activeOutputs;
};

/// A TPDF graph: the structural Graph plus kernel/control metadata.
class TpdfGraph {
 public:
  explicit TpdfGraph(graph::Graph g);

  const graph::Graph& graph() const { return graph_; }
  /// Mutable access for incremental edits; the usual revision rules
  /// apply (mutators bump Graph::revision(), consumers re-derive).
  graph::Graph& graph() { return graph_; }
  const std::string& name() const { return graph_.name(); }

  // ---- Kernel metadata ----------------------------------------------

  void setRole(graph::ActorId kernel, KernelRole role);
  KernelRole role(graph::ActorId kernel) const;

  void setModes(graph::ActorId kernel, std::vector<ModeSpec> modes);
  /// The kernel's mode table; kernels without a control port have an
  /// implicit single WaitAll mode.
  const std::vector<ModeSpec>& modes(graph::ActorId kernel) const;

  /// The kernel's control input port, if it has one.
  std::optional<graph::PortId> controlPort(graph::ActorId kernel) const;

  // ---- Control-actor metadata -----------------------------------------

  /// Declares `ctl` to be a clock with the given timeout period
  /// (scheduler time units; e.g. the 500 ms deadline of Figure 6).
  void setClock(graph::ActorId ctl, double period);
  ControlKind controlKind(graph::ActorId ctl) const;
  std::optional<double> clockPeriod(graph::ActorId ctl) const;

  /// All control actors of the graph (the paper's set G).
  std::vector<graph::ActorId> controlActors() const;
  /// All kernels (the paper's set K).
  std::vector<graph::ActorId> kernels() const;

  /// TPDF-specific validation on top of Graph::validate(): mode tables
  /// reference ports of the right actor/direction, Select-duplicate has
  /// one data input, Transaction has one data output, clock periods are
  /// positive.
  void validate() const;

 private:
  graph::Graph graph_;
  std::unordered_map<graph::ActorId, KernelRole> roles_;
  std::unordered_map<graph::ActorId, std::vector<ModeSpec>> modes_;
  std::unordered_map<graph::ActorId, double> clockPeriods_;
  std::vector<ModeSpec> defaultModes_;
};

}  // namespace tpdf::core
