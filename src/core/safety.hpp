// Rate safety (Definition 5, Equation 9 of the paper).
//
// A TPDF graph is rate safe iff for every control actor g and every actor
// ai in prec(g) ∪ succ(g) connected to g by channel eu:
//     X_g(1) == Y_i(q^L_ai)   when g produces on eu,
//     Y_g(1) == X_i(q^L_ai)   when g consumes from eu.
// This guarantees each control actor fires exactly once per local
// iteration of its area, so the control tokens received inside one local
// iteration are consistent ("synchronous"), which is what Theorem 2's
// boundedness argument needs.
#pragma once

#include <string>
#include <vector>

#include "core/area.hpp"
#include "core/context.hpp"
#include "core/local.hpp"
#include "csdf/repetition.hpp"
#include "graph/graph.hpp"
#include "support/json.hpp"

namespace tpdf::core {

/// Safety verdict for one control actor.
struct ControlSafety {
  graph::ActorId control;
  ControlArea area;
  LocalSolution local;
  /// q_g / q_G(Area(g)): must be 1 for a safe graph.
  symbolic::Expr firingsPerLocalIteration;
  bool safe = false;
  std::string diagnostic;
};

struct RateSafetyReport {
  bool safe = false;
  std::string diagnostic;
  std::vector<ControlSafety> perControl;

  /// {"safe": true, "controls": [{"control": "C", "area": ["B", ...],
  /// "qG": "p", "firingsPerLocalIteration": "1", "safe": true}, ...]}.
  support::json::Value toJson(const graph::Graph& g) const;
};

/// Checks Definition 5 for every control actor of `g` given its
/// repetition vector.  Graphs without control actors are trivially safe.
RateSafetyReport checkRateSafety(const graph::Graph& g,
                                 const csdf::RepetitionVector& rv);

/// Same through a shared context (view adjacency + memoized repetition
/// vector).
RateSafetyReport checkRateSafety(const AnalysisContext& ctx);

}  // namespace tpdf::core
