#include "core/liveness.hpp"

#include <algorithm>
#include <set>

#include "core/scc.hpp"
#include "support/error.hpp"

namespace tpdf::core {

using graph::ActorId;
using graph::ChannelId;
using graph::Graph;
using symbolic::Environment;
using symbolic::Expr;

namespace {

/// Token-accurate state of one cycle's internal channels.  Channels
/// crossing the cycle boundary are ignored: external producers are
/// assumed live, which is the clustering abstraction of Section III-C.
/// Rates come pre-evaluated from the shared context tables.
struct CycleSim {
  const graph::GraphView& view;
  const graph::EvaluatedRates& rates;
  std::vector<ActorId> actors;                   // cycle members
  std::vector<std::int64_t> target;              // qL per member
  std::vector<std::int64_t> fired;               // firings so far
  std::vector<ChannelId> internalChannels;
  std::vector<std::int64_t> occupancy;           // per internal channel

  CycleSim(const graph::GraphView& v, const graph::EvaluatedRates& er,
           const std::vector<ActorId>& members,
           const std::vector<std::int64_t>& localCounts)
      : view(v), rates(er), actors(members), target(localCounts),
        fired(members.size(), 0) {
    std::set<ActorId> memberSet(members.begin(), members.end());
    for (const graph::Channel& c : view.graph().channels()) {
      if (memberSet.count(view.sourceActor(c.id)) != 0 &&
          memberSet.count(view.destActor(c.id)) != 0) {
        internalChannels.push_back(c.id);
        occupancy.push_back(c.initialTokens);
      }
    }
  }

  std::size_t memberIndex(ActorId a) const {
    return static_cast<std::size_t>(
        std::find(actors.begin(), actors.end(), a) - actors.begin());
  }

  std::size_t internalIndex(ChannelId c) const {
    const auto it =
        std::find(internalChannels.begin(), internalChannels.end(), c);
    return static_cast<std::size_t>(it - internalChannels.begin());
  }

  bool enabled(std::size_t mi) const {
    if (fired[mi] >= target[mi]) return false;
    const ActorId a = actors[mi];
    const Graph& g = view.graph();
    for (graph::PortId pid : g.actor(a).ports) {
      const graph::Port& p = g.port(pid);
      if (!graph::isInput(p.kind)) continue;
      const std::size_t ci = internalIndex(p.channel);
      if (ci == internalChannels.size()) continue;  // external input
      const std::int64_t need = rates.at(pid, fired[mi]);
      if (occupancy[ci] < need) return false;
    }
    return true;
  }

  void fire(std::size_t mi, csdf::Schedule* schedule) {
    const ActorId a = actors[mi];
    const Graph& g = view.graph();
    for (graph::PortId pid : g.actor(a).ports) {
      const graph::Port& p = g.port(pid);
      const std::size_t ci = internalIndex(p.channel);
      if (ci == internalChannels.size()) continue;
      const std::int64_t amount = rates.at(pid, fired[mi]);
      if (graph::isInput(p.kind)) {
        occupancy[ci] -= amount;
      } else {
        occupancy[ci] += amount;
      }
    }
    if (schedule != nullptr) schedule->order.push_back({a, fired[mi]});
    ++fired[mi];
  }

  bool done() const {
    for (std::size_t i = 0; i < actors.size(); ++i) {
      if (fired[i] < target[i]) return false;
    }
    return true;
  }
};

/// Strict clustering: does some single-appearance order of whole blocks
/// a^{qL_a} execute?  Greedy: commit any actor whose entire remaining
/// block can fire in one run.
bool strictBlockSchedule(const graph::GraphView& view,
                         const graph::EvaluatedRates& rates,
                         const std::vector<ActorId>& members,
                         const std::vector<std::int64_t>& counts,
                         support::Budget* budget) {
  CycleSim sim(view, rates, members, counts);
  while (!sim.done()) {
    bool progressed = false;
    for (std::size_t mi = 0; mi < sim.actors.size() && !progressed; ++mi) {
      if (sim.fired[mi] >= sim.target[mi]) continue;
      // Try the whole block; roll back the mutable state on failure.
      const std::vector<std::int64_t> savedFired = sim.fired;
      const std::vector<std::int64_t> savedOccupancy = sim.occupancy;
      bool blockOk = true;
      while (sim.fired[mi] < sim.target[mi]) {
        support::Budget::checkpoint(budget);
        if (!sim.enabled(mi)) {
          blockOk = false;
          break;
        }
        sim.fire(mi, nullptr);
      }
      if (blockOk) {
        progressed = true;
      } else {
        sim.fired = savedFired;
        sim.occupancy = savedOccupancy;
      }
    }
    if (!progressed) return false;
  }
  return true;
}

/// Late schedule: greedy per-firing interleaving (subsumes ref. [8]).
bool lateSchedule(const graph::GraphView& view,
                  const graph::EvaluatedRates& rates,
                  const std::vector<ActorId>& members,
                  const std::vector<std::int64_t>& counts,
                  csdf::Schedule* out, support::Budget* budget) {
  CycleSim sim(view, rates, members, counts);
  while (!sim.done()) {
    support::Budget::checkpoint(budget);
    bool progressed = false;
    for (std::size_t mi = 0; mi < sim.actors.size(); ++mi) {
      if (sim.enabled(mi)) {
        sim.fire(mi, out);
        progressed = true;
        break;
      }
    }
    if (!progressed) return false;
  }
  return true;
}

std::string exponentString(const Expr& e) {
  if (e.isOne()) return "";
  if (e.isConstant()) return "^" + e.toString();
  return "^{" + e.toString() + "}";
}

}  // namespace

namespace {

LivenessReport checkLivenessOver(const AnalysisContext& ctx,
                                 const csdf::RepetitionVector& rv,
                                 const Environment& env,
                                 std::int64_t sampleValue,
                                 const graph::EvaluatedRates* providedRates,
                                 support::Budget* budget) {
  const Graph& g = ctx.graph();
  const graph::GraphView& view = ctx.view();
  LivenessReport report;
  if (!rv.consistent) {
    report.diagnostic = "graph is not rate consistent: " + rv.diagnostic;
    return report;
  }

  report.sampleEnv = env;
  for (const std::string& param : g.params()) {
    if (!report.sampleEnv.has(param)) {
      report.sampleEnv.bind(param, sampleValue);
    }
  }
  // Caller-provided tables keep concurrent sweeps off the context's
  // mutable rate cache; they must match the completed sample env.
  const graph::EvaluatedRates& sampleRates =
      providedRates != nullptr ? *providedRates
                               : ctx.rates(report.sampleEnv);

  const SccResult scc = stronglyConnectedComponents(view);

  bool allCyclesLive = true;
  for (std::size_t c : scc.nonTrivial) {
    CycleReport cycle;
    cycle.actors = scc.members[c];

    const std::set<ActorId> Z(cycle.actors.begin(), cycle.actors.end());
    cycle.local = localSolution(g, rv, Z);
    if (!cycle.local.ok) {
      cycle.diagnostic = cycle.local.diagnostic;
      allCyclesLive = false;
      report.cycles.push_back(std::move(cycle));
      continue;
    }

    std::vector<std::int64_t> counts;
    counts.reserve(cycle.actors.size());
    for (ActorId a : cycle.actors) {
      counts.push_back(cycle.local.of(a).evaluateInt(report.sampleEnv));
    }

    cycle.strictClusterable =
        strictBlockSchedule(view, sampleRates, cycle.actors, counts, budget);
    cycle.lateSchedulable = lateSchedule(view, sampleRates, cycle.actors,
                                         counts, &cycle.localSchedule, budget);
    if (!cycle.lateSchedulable) {
      std::string names;
      for (ActorId a : cycle.actors) {
        if (!names.empty()) names += ", ";
        names += g.actor(a).name;
      }
      cycle.diagnostic = "cycle {" + names +
                         "} deadlocks: no local schedule exists even with "
                         "interleaving (insufficient initial tokens)";
      allCyclesLive = false;
    }
    report.cycles.push_back(std::move(cycle));
  }

  // Whole-graph symbolic execution at the sample valuation, over the
  // shared view and integer rate tables.
  const csdf::LivenessResult global =
      csdf::findSchedule(view, rv, report.sampleEnv,
                         csdf::SchedulePolicy::Eager, &sampleRates, budget);
  report.sampleSchedule = global.schedule;

  report.live = allCyclesLive && global.live;
  if (!report.live && report.diagnostic.empty()) {
    for (const CycleReport& c : report.cycles) {
      if (!c.diagnostic.empty()) {
        report.diagnostic = c.diagnostic;
        break;
      }
    }
    if (report.diagnostic.empty()) report.diagnostic = global.diagnostic;
  }
  if (!report.live) return report;

  // Parametric schedule: components in topological order; cycles are
  // rendered as (local late schedule)^{qG}.
  std::string rendered;
  for (std::size_t c = 0; c < scc.members.size(); ++c) {
    if (!rendered.empty()) rendered += " ";
    const bool cyclic = std::find(scc.nonTrivial.begin(),
                                  scc.nonTrivial.end(),
                                  c) != scc.nonTrivial.end();
    if (!cyclic) {
      const ActorId a = scc.members[c][0];
      rendered += g.actor(a).name + exponentString(rv.qOf(a));
    } else {
      for (const CycleReport& cr : report.cycles) {
        if (cr.actors == scc.members[c]) {
          rendered += "(" + cr.localSchedule.toString(g) + ")" +
                      exponentString(Expr(cr.local.qG));
          break;
        }
      }
    }
  }
  report.parametricSchedule = rendered;
  return report;
}

}  // namespace

LivenessReport checkLiveness(const Graph& g,
                             const csdf::RepetitionVector& rv,
                             const Environment& env,
                             std::int64_t sampleValue,
                             support::Budget* budget) {
  return checkLivenessOver(AnalysisContext(g), rv, env, sampleValue, nullptr,
                           budget);
}

LivenessReport checkLiveness(const AnalysisContext& ctx,
                             const Environment& env,
                             std::int64_t sampleValue,
                             support::Budget* budget) {
  return checkLivenessOver(ctx, ctx.repetition(), env, sampleValue, nullptr,
                           budget);
}

LivenessReport checkLiveness(const AnalysisContext& ctx,
                             const Environment& env,
                             std::int64_t sampleValue,
                             const graph::EvaluatedRates& sampleRates,
                             support::Budget* budget) {
  return checkLivenessOver(ctx, ctx.repetition(), env, sampleValue,
                           &sampleRates, budget);
}

support::json::Value LivenessReport::toJson(const Graph& g) const {
  auto doc = support::json::Value::object();
  doc.set("live", live);
  if (!diagnostic.empty()) doc.set("diagnostic", diagnostic);
  if (!parametricSchedule.empty()) {
    doc.set("parametricSchedule", parametricSchedule);
  }
  auto bindings = support::json::Value::object();
  for (const auto& [name, value] : sampleEnv.bindings()) {
    bindings.set(name, value);
  }
  doc.set("sampleBindings", std::move(bindings));
  if (!sampleSchedule.empty()) {
    doc.set("sampleSchedule", sampleSchedule.toJson(g));
  }
  auto cycleArray = support::json::Value::array();
  for (const CycleReport& c : cycles) {
    auto entry = support::json::Value::object();
    auto actors = support::json::Value::array();
    for (const ActorId a : c.actors) actors.push(g.actor(a).name);
    entry.set("actors", std::move(actors));
    entry.set("strictClusterable", c.strictClusterable);
    entry.set("lateSchedulable", c.lateSchedulable);
    if (!c.localSchedule.empty()) {
      entry.set("localSchedule", c.localSchedule.toJson(g));
    }
    if (!c.diagnostic.empty()) entry.set("diagnostic", c.diagnostic);
    cycleArray.push(std::move(entry));
  }
  doc.set("cycles", std::move(cycleArray));
  return doc;
}

}  // namespace tpdf::core
