#include "core/area.hpp"

#include <algorithm>

namespace tpdf::core {

using graph::ActorId;
using graph::Graph;

namespace {

// Shared over Graph and GraphView: both expose outChannels/inChannels
// (vector vs span) and the channel->actor maps under the same names.
template <class G>
std::set<ActorId> successorsOf(const G& g, const std::set<ActorId>& from) {
  std::set<ActorId> out;
  for (ActorId a : from) {
    for (graph::ChannelId c : g.outChannels(a)) {
      out.insert(g.destActor(c));
    }
  }
  return out;
}

template <class G>
std::set<ActorId> predecessorsOf(const G& g, const std::set<ActorId>& from) {
  std::set<ActorId> out;
  for (ActorId a : from) {
    for (graph::ChannelId c : g.inChannels(a)) {
      out.insert(g.sourceActor(c));
    }
  }
  return out;
}

template <class G>
ControlArea controlAreaImpl(const G& g, ActorId ctl) {
  ControlArea area;
  area.control = ctl;
  area.prec = predecessorsOf(g, {ctl});
  area.succ = successorsOf(g, {ctl});

  // infl(g) = (succ(prec(g)) ∩ prec(succ(g))) \ {g}.
  const std::set<ActorId> succOfPrec = successorsOf(g, area.prec);
  const std::set<ActorId> precOfSucc = predecessorsOf(g, area.succ);
  std::set_intersection(succOfPrec.begin(), succOfPrec.end(),
                        precOfSucc.begin(), precOfSucc.end(),
                        std::inserter(area.infl, area.infl.begin()));
  area.infl.erase(ctl);

  area.all = area.prec;
  area.all.insert(area.succ.begin(), area.succ.end());
  area.all.insert(area.infl.begin(), area.infl.end());
  area.all.erase(ctl);
  return area;
}

}  // namespace

ControlArea controlArea(const Graph& g, ActorId ctl) {
  return controlAreaImpl(g, ctl);
}

ControlArea controlArea(const graph::GraphView& view, ActorId ctl) {
  return controlAreaImpl(view, ctl);
}

std::string ControlArea::toString(const Graph& g) const {
  std::string out = "{";
  bool first = true;
  for (ActorId a : all) {
    if (!first) out += ", ";
    out += g.actor(a).name;
    first = false;
  }
  return out + "}";
}

}  // namespace tpdf::core
