// Parametric liveness analysis (Section III-C of the paper).
//
// A (C)SDF/TPDF graph deadlocks only if it contains a cycle, so liveness
// reduces to checking every cycle (non-trivial SCC):
//   1. *Strict clustering*: replace the cycle Z by one actor Omega whose
//      firing is a whole local iteration of Z executed as single-
//      appearance blocks a^{qL_a}.  This finds the schedule A^2 Omega^p of
//      Figure 4(a).
//   2. *Late schedule* fallback: when no block order exists (Figure 4(b),
//      one initial token) search for an interleaved local schedule by
//      greedy demand-driven simulation, yielding (B C C B).
// The whole graph is then checked by symbolic execution at a sample
// parameter valuation and a parametric schedule string is rendered, e.g.
// "A^2 (B C C B)^p".
#pragma once

#include <string>
#include <vector>

#include "csdf/liveness.hpp"
#include "csdf/repetition.hpp"
#include "graph/graph.hpp"
#include "core/context.hpp"
#include "core/local.hpp"
#include "support/json.hpp"
#include "symbolic/env.hpp"

namespace tpdf::core {

/// Analysis outcome for one cycle (non-trivial SCC).
struct CycleReport {
  std::vector<graph::ActorId> actors;
  LocalSolution local;
  /// A single-appearance block order of the local iteration exists.
  bool strictClusterable = false;
  /// An interleaved local schedule exists (late schedule of ref. [8]).
  bool lateSchedulable = false;
  /// The local schedule found (late if needed), at the sample valuation.
  csdf::Schedule localSchedule;
  std::string diagnostic;
};

struct LivenessReport {
  bool live = false;
  std::string diagnostic;
  std::vector<CycleReport> cycles;
  /// Concrete full-iteration schedule at the sample valuation.
  csdf::Schedule sampleSchedule;
  /// The parameter valuation used for the concrete checks.
  symbolic::Environment sampleEnv;
  /// Symbolic schedule in clustered form, e.g. "A^2 (B C C B)^p".
  std::string parametricSchedule;

  /// {"live": true, "parametricSchedule": "...", "sampleBindings":
  /// {"p": 2}, "sampleSchedule": <Schedule::toJson>, "cycles": [...]}.
  support::json::Value toJson(const graph::Graph& g) const;
};

/// Checks liveness of `g` given its repetition vector.  Unbound
/// parameters are instantiated with `sampleValue` for the concrete
/// simulations (the topology-selection argument of Section III-C makes
/// the all-ports-required check conservative).  A non-null `budget` is
/// checkpointed once per simulated firing (cycle simulations and the
/// global schedule search) and may abort with support::BudgetExceeded.
LivenessReport checkLiveness(const graph::Graph& g,
                             const csdf::RepetitionVector& rv,
                             const symbolic::Environment& env = {},
                             std::int64_t sampleValue = 2,
                             support::Budget* budget = nullptr);

/// Same through a shared context: SCCs and cycle simulations read the
/// view's adjacency, the repetition vector is the memoized one, and the
/// sample-valuation integer rate tables are shared with the global
/// schedule search instead of re-evaluated per cycle.
LivenessReport checkLiveness(const AnalysisContext& ctx,
                             const symbolic::Environment& env = {},
                             std::int64_t sampleValue = 2,
                             support::Budget* budget = nullptr);

/// Race-free variant for concurrent callers (the sweep driver): the
/// caller supplies the integer rate tables instead of going through the
/// context's mutable rate cache, so many threads can share one context
/// read-only.  `sampleRates` must have been built over ctx.view() under
/// `env` completed with `sampleValue` for every unbound parameter (the
/// same environment checkLiveness would build internally); reports are
/// identical to the cached overload.
LivenessReport checkLiveness(const AnalysisContext& ctx,
                             const symbolic::Environment& env,
                             std::int64_t sampleValue,
                             const graph::EvaluatedRates& sampleRates,
                             support::Budget* budget = nullptr);

}  // namespace tpdf::core
