// Strongly connected components of the actor graph (Tarjan).
//
// The liveness analysis of Section III-C clusters every cycle; cycles are
// exactly the non-trivial SCCs (more than one actor, or an actor with a
// self-loop channel).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/view.hpp"

namespace tpdf::core {

struct SccResult {
  /// component[actor.index()] = component number, 0-based.
  std::vector<std::size_t> component;
  /// members[c] = actors of component c in id order.
  std::vector<std::vector<graph::ActorId>> members;

  /// Components that form a cycle: size > 1 or a single actor with a
  /// self-loop.
  std::vector<std::size_t> nonTrivial;
};

SccResult stronglyConnectedComponents(const graph::Graph& g);

/// Same decomposition over a precomputed view (flat channel->actor maps,
/// no adjacency re-derivation).
SccResult stronglyConnectedComponents(const graph::GraphView& view);

}  // namespace tpdf::core
