// Control areas (Definition 3 of the paper).
//
// The area of a control actor g is prec(g) ∪ succ(g) ∪ infl(g) where
// infl(g) = (succ(prec(g)) ∩ prec(succ(g))) \ {g}: its sources, the
// kernels receiving its control tokens, and the actors influenced in
// between.  Rate safety (Definition 5) is stated per area.
#pragma once

#include <set>
#include <string>

#include "graph/graph.hpp"
#include "graph/view.hpp"

namespace tpdf::core {

struct ControlArea {
  graph::ActorId control;
  std::set<graph::ActorId> prec;
  std::set<graph::ActorId> succ;
  std::set<graph::ActorId> infl;
  /// prec ∪ succ ∪ infl.
  std::set<graph::ActorId> all;

  /// "{B, D, E, F}" with actor names in id order.
  std::string toString(const graph::Graph& g) const;
};

/// Computes Area(ctl) per Definition 3.
ControlArea controlArea(const graph::Graph& g, graph::ActorId ctl);

/// Same over a precomputed view (CSR adjacency, no per-call vectors).
ControlArea controlArea(const graph::GraphView& view, graph::ActorId ctl);

}  // namespace tpdf::core
