#include "core/analysis.hpp"

#include <sstream>

namespace tpdf::core {

AnalysisReport analyze(const graph::Graph& g,
                       const symbolic::Environment& env,
                       support::Budget* budget) {
  return analyze(AnalysisContext(g), env, budget);
}

AnalysisReport analyze(const AnalysisContext& ctx,
                       const symbolic::Environment& env,
                       support::Budget* budget) {
  AnalysisReport report;
  report.repetition = ctx.repetition();
  report.safety = checkRateSafety(ctx);
  report.liveness = checkLiveness(ctx, env, 2, budget);
  return report;
}

AnalysisReport analyze(const TpdfGraph& g, const symbolic::Environment& env,
                       support::Budget* budget) {
  g.validate();
  return analyze(g.graph(), env, budget);
}

std::string AnalysisReport::toString(const graph::Graph& g) const {
  std::ostringstream os;
  os << "graph '" << g.name() << "': " << g.actorCount() << " actors, "
     << g.channelCount() << " channels\n";

  os << "rate consistency: ";
  if (repetition.consistent) {
    os << "CONSISTENT, q = " << repetition.toString() << "\n";
  } else {
    os << "INCONSISTENT (" << repetition.diagnostic << ")\n";
  }

  os << "rate safety:      ";
  if (safety.safe) {
    os << "SAFE";
    if (safety.perControl.empty()) {
      os << " (no control actors)";
    }
    os << "\n";
    for (const ControlSafety& cs : safety.perControl) {
      os << "  Area(" << g.actor(cs.control).name
         << ") = " << cs.area.toString(g) << ", q_G = "
         << cs.local.qG.toString() << "\n";
    }
  } else {
    os << "UNSAFE (" << safety.diagnostic << ")\n";
  }

  os << "liveness:         ";
  if (liveness.live) {
    os << "LIVE";
    if (!liveness.parametricSchedule.empty()) {
      os << ", schedule: " << liveness.parametricSchedule;
    }
    os << "\n";
    for (const CycleReport& c : liveness.cycles) {
      os << "  cycle (" << c.localSchedule.toString(g) << "): "
         << (c.strictClusterable ? "clusterable" : "late schedule required")
         << "\n";
    }
  } else {
    os << "DEADLOCK (" << liveness.diagnostic << ")\n";
  }

  os << "boundedness:      "
     << (bounded() ? "BOUNDED (Theorem 2)" : "NOT GUARANTEED") << "\n";
  return os.str();
}

support::json::Value AnalysisReport::toJson(const graph::Graph& g) const {
  auto doc = support::json::Value::object();
  doc.set("graph", g.name());
  doc.set("actors", g.actorCount());
  doc.set("channels", g.channelCount());
  doc.set("consistent", consistent());
  doc.set("rateSafe", rateSafe());
  doc.set("live", live());
  doc.set("bounded", bounded());
  doc.set("repetition", repetition.toJson(g));
  doc.set("safety", safety.toJson(g));
  doc.set("liveness", liveness.toJson(g));
  return doc;
}

}  // namespace tpdf::core
