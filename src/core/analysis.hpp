// The complete TPDF static-analysis chain of Section III:
// rate consistency -> rate safety -> liveness -> boundedness (Theorem 2).
#pragma once

#include <string>

#include "core/context.hpp"
#include "core/liveness.hpp"
#include "core/model.hpp"
#include "core/safety.hpp"
#include "csdf/repetition.hpp"
#include "support/json.hpp"
#include "symbolic/env.hpp"

namespace tpdf::core {

struct AnalysisReport {
  csdf::RepetitionVector repetition;
  RateSafetyReport safety;
  LivenessReport liveness;

  bool consistent() const { return repetition.consistent; }
  bool rateSafe() const { return safety.safe; }
  bool live() const { return liveness.live; }

  /// Theorem 2: a rate consistent, safe and live TPDF graph returns to
  /// its initial state at the end of each iteration, hence executes in
  /// bounded memory.
  bool bounded() const { return consistent() && rateSafe() && live(); }

  /// Multi-line human-readable summary.
  std::string toString(const graph::Graph& g) const;

  /// Machine-readable sibling of toString(): verdict booleans plus the
  /// per-stage sub-reports ("repetition", "safety", "liveness").
  support::json::Value toJson(const graph::Graph& g) const;
};

/// Runs the full analysis chain on a TPDF graph.  `env` may pre-bind some
/// parameters; the rest are sampled for the concrete liveness checks.  A
/// non-null `budget` is checkpointed throughout the liveness stage and
/// may abort the chain with support::BudgetExceeded.
AnalysisReport analyze(const TpdfGraph& g,
                       const symbolic::Environment& env = {},
                       support::Budget* budget = nullptr);

/// Same, for a bare dataflow graph (SDF/CSDF or TPDF without metadata).
AnalysisReport analyze(const graph::Graph& g,
                       const symbolic::Environment& env = {},
                       support::Budget* budget = nullptr);

/// Staged-pass variant: consistency, safety and liveness all consume the
/// context's shared intermediates (view, memoized repetition vector,
/// per-valuation rate tables).  Re-analyzing through the same context
/// re-derives nothing structural; reports are identical to the Graph
/// overloads.
AnalysisReport analyze(const AnalysisContext& ctx,
                       const symbolic::Environment& env = {},
                       support::Budget* budget = nullptr);

}  // namespace tpdf::core
