#include "core/local.hpp"

namespace tpdf::core {

using graph::ActorId;
using graph::Graph;
using symbolic::Expr;
using symbolic::Monomial;

LocalSolution localSolution(const Graph& g, const csdf::RepetitionVector& rv,
                            const std::set<ActorId>& Z) {
  LocalSolution out;
  if (!rv.consistent) {
    out.diagnostic = "no repetition vector: " + rv.diagnostic;
    return out;
  }
  if (Z.empty()) {
    out.diagnostic = "empty actor subset";
    return out;
  }

  // q_G(Z) = gcd of r_ai = q_ai / tau_ai over Z.
  Monomial gcd;  // zero monomial: gcd identity
  for (ActorId a : Z) {
    gcd = symbolic::exprGcd(Expr(gcd), rv.rOf(a));
  }
  out.qG = Expr(gcd);

  for (ActorId a : Z) {
    const Expr local = rv.qOf(a).dividedBy(gcd);
    // A valid local repetition count has integer coefficients and no
    // negative parameter exponents.
    for (const Monomial& t : local.terms()) {
      if (!t.coeff().isInteger()) {
        out.diagnostic = "local solution of '" + g.actor(a).name +
                         "' is fractional: " + local.toString();
        return out;
      }
      for (const symbolic::ParamExp& pe : t.exponents()) {
        if (pe.exp < 0) {
          out.diagnostic =
              "local solution of '" + g.actor(a).name +
              "' has negative power of parameter '" +
              symbolic::ParamTable::instance().name(pe.id) +
              "': " + local.toString();
          return out;
        }
      }
    }
    out.qL.emplace(a, local);
  }

  out.ok = true;
  return out;
}

}  // namespace tpdf::core
