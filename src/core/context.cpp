#include "core/context.hpp"

namespace tpdf::core {

AnalysisContext::AnalysisContext(const graph::Graph& g)
    : g_(&g), view_(g) {}

const csdf::RepetitionVector& AnalysisContext::repetition() const {
  if (!repetitionComputed_) {
    repetition_ = csdf::computeRepetitionVector(view_);
    repetitionComputed_ = true;
  }
  return repetition_;
}

const graph::EvaluatedRates& AnalysisContext::rates(
    const symbolic::Environment& env) const {
  std::string key;
  for (const auto& [name, value] : env.bindings()) {
    key += name;
    key += '=';
    key += std::to_string(value);
    key += ';';
  }
  const auto it = rateCache_.find(key);
  if (it != rateCache_.end()) return it->second;
  return rateCache_.emplace(std::move(key), graph::EvaluatedRates(view_, env))
      .first->second;
}

}  // namespace tpdf::core
