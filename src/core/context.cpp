#include "core/context.hpp"

#include <algorithm>
#include <set>

namespace tpdf::core {

using graph::ActorId;
using graph::ChannelId;
using graph::Graph;

AnalysisContext::AnalysisContext(const Graph& g)
    : g_(&g),
      view_(g),
      syncedRevision_(g.revision()),
      syncedShapeRevision_(g.shapeRevision()),
      syncedActorCount_(g.actorCount()) {}

std::string AnalysisContext::cacheKey(const symbolic::Environment& env) {
  std::string key;
  for (const auto& [name, value] : env.bindings()) {
    key += name;
    key += '=';
    key += std::to_string(value);
    key += ';';
  }
  return key;
}

void AnalysisContext::computeComponents() const {
  const std::size_t n = g_->actorCount();
  // Union-find over actors; channels are the edges.
  std::vector<std::uint32_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) {
    parent[i] = static_cast<std::uint32_t>(i);
  }
  const auto find = [&](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const graph::Channel& c : g_->channels()) {
    const std::uint32_t a = find(view_.sourceActor(c.id).index());
    const std::uint32_t b = find(view_.destActor(c.id).index());
    // Union by index keeps the root the lowest member, so component ids
    // come out ordered by their minimum actor.
    if (a < b) {
      parent[b] = a;
    } else if (b < a) {
      parent[a] = b;
    }
  }
  componentOf_.assign(n, 0);
  compMinActor_.clear();
  compSize_.clear();
  std::vector<std::uint32_t> compOfRoot(n, UINT32_MAX);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t root = find(static_cast<std::uint32_t>(i));
    if (compOfRoot[root] == UINT32_MAX) {
      compOfRoot[root] = static_cast<std::uint32_t>(compMinActor_.size());
      compMinActor_.push_back(root);
      compSize_.push_back(0);
    }
    componentOf_[i] = compOfRoot[root];
    ++compSize_[compOfRoot[root]];
  }
  componentsValid_ = true;
}

void AnalysisContext::sync() const {
  const std::uint64_t rev = g_->revision();
  if (rev == syncedRevision_) return;
  ++stats_.syncs;
  std::vector<Graph::Touch> touches;
  const bool tracked = g_->touchesSince(syncedRevision_, touches);
  view_.refresh();
  const std::uint64_t shapeRev = g_->shapeRevision();
  const std::size_t n = g_->actorCount();

  // Rate tables: the flat layout is keyed by shapeRevision, so tables
  // survive setExecTime / addChannel / addParam edits verbatim.
  if (shapeRev != syncedShapeRevision_) {
    stats_.rateTablesDropped += rateCache_.size();
    rateCache_.clear();
  } else {
    stats_.rateTablesKept += rateCache_.size();
  }

  if (!tracked) {
    // More edits than the graph's touch log retains: nothing can be
    // localized, drop every derived fact.
    ++stats_.fullRebuilds;
    repetitionComputed_ = false;
    livenessCache_.clear();
    componentsValid_ = false;
  } else {
    // Collect the actors whose component's balance system or initial
    // tokens an edit can have changed.  Param and ExecTime touches
    // affect neither repetition nor rates nor liveness.
    std::vector<std::uint32_t> dirtyActors;
    for (const Graph::Touch& t : touches) {
      switch (t.kind) {
        case Graph::Touch::Kind::Param:
        case Graph::Touch::Kind::ExecTime:
          break;
        case Graph::Touch::Kind::Actor:
        case Graph::Touch::Kind::Port:
          dirtyActors.push_back(t.index);
          break;
        case Graph::Touch::Kind::Channel: {
          const graph::Channel& c = g_->channel(ChannelId(t.index));
          dirtyActors.push_back(g_->port(c.src).actor.index());
          dirtyActors.push_back(g_->port(c.dst).actor.index());
          break;
        }
      }
    }

    if (!dirtyActors.empty()) {
      computeComponents();
      std::vector<char> dirtyComp(compMinActor_.size(), 0);
      for (const std::uint32_t a : dirtyActors) {
        dirtyComp[componentOf_[a]] = 1;
      }

      // Repetition: re-solve only the dirty components and splice their
      // entries over the cached vector; clean components' normalized
      // sub-vectors are exactly what a full solve would produce.
      if (repetitionComputed_) {
        if (!repetition_.consistent) {
          // Diagnostics of a fresh solve are position-dependent; always
          // regenerate them from scratch.
          ++stats_.fullRebuilds;
          repetitionComputed_ = false;
        } else {
          std::vector<char> mask(n, 0);
          std::size_t dirtyActorCount = 0;
          for (std::size_t i = 0; i < n; ++i) {
            if (dirtyComp[componentOf_[i]]) {
              mask[i] = 1;
              ++dirtyActorCount;
            }
          }
          csdf::RepetitionVector partial =
              csdf::computeRepetitionVector(view_, mask);
          if (!partial.consistent) {
            // Fall back to the full solve so the diagnostic is the
            // canonical (first-failure-in-id-order) one.
            repetition_ = csdf::computeRepetitionVector(view_);
          } else {
            repetition_.r.resize(n);
            repetition_.q.resize(n);
            for (std::size_t i = 0; i < n; ++i) {
              if (mask[i]) {
                repetition_.r[i] = std::move(partial.r[i]);
                repetition_.q[i] = std::move(partial.q[i]);
              }
            }
          }
          stats_.repetitionActorsResolved += dirtyActorCount;
          stats_.repetitionActorsReused += n - dirtyActorCount;
        }
      }

      // Liveness: keep only verdicts whose signature still names a
      // clean component of the new partition (merged or touched
      // components changed signature or are explicitly dirty).
      std::set<Signature> cleanSigs;
      for (std::size_t c = 0; c < compMinActor_.size(); ++c) {
        if (!dirtyComp[c]) cleanSigs.insert({compMinActor_[c], compSize_[c]});
      }
      for (auto& [key, byComp] : livenessCache_) {
        for (auto it = byComp.begin(); it != byComp.end();) {
          it = cleanSigs.count(it->first) ? std::next(it) : byComp.erase(it);
        }
      }
    }
  }

  syncedRevision_ = rev;
  syncedShapeRevision_ = shapeRev;
  syncedActorCount_ = n;
}

const csdf::RepetitionVector& AnalysisContext::repetition() const {
  sync();
  if (!repetitionComputed_) {
    repetition_ = csdf::computeRepetitionVector(view_);
    repetitionComputed_ = true;
  }
  return repetition_;
}

const graph::EvaluatedRates& AnalysisContext::rates(
    const symbolic::Environment& env) const {
  sync();
  std::string key = cacheKey(env);
  const auto it = rateCache_.find(key);
  if (it != rateCache_.end()) return it->second;
  return rateCache_.emplace(std::move(key), graph::EvaluatedRates(view_, env))
      .first->second;
}

bool AnalysisContext::live(const symbolic::Environment& env,
                           csdf::SchedulePolicy policy,
                           std::string* diagnostic) const {
  const csdf::RepetitionVector& rv = repetition();  // syncs
  if (!rv.consistent) {
    if (diagnostic != nullptr) {
      *diagnostic = "graph is not rate consistent: " + rv.diagnostic;
    }
    return false;
  }
  if (!componentsValid_) computeComponents();
  const std::size_t n = g_->actorCount();
  auto& byComp =
      livenessCache_[cacheKey(env) + '#' +
                     std::to_string(static_cast<int>(policy))];
  bool allLive = true;
  for (std::size_t c = 0; c < compMinActor_.size(); ++c) {
    const Signature sig{compMinActor_[c], compSize_[c]};
    auto it = byComp.find(sig);
    if (it == byComp.end()) {
      std::vector<char> mask(n, 0);
      for (std::size_t i = 0; i < n; ++i) {
        if (componentOf_[i] == c) mask[i] = 1;
      }
      it = byComp
               .emplace(sig, csdf::findSchedule(view_, rv, env, policy,
                                                &rates(env), nullptr, mask))
               .first;
      ++stats_.livenessComponentsComputed;
    } else {
      ++stats_.livenessComponentsReused;
    }
    if (allLive && !it->second.live) {
      allLive = false;
      if (diagnostic != nullptr) *diagnostic = it->second.diagnostic;
    }
  }
  return allLive;
}

std::size_t AnalysisContext::componentCount() const {
  sync();
  if (!componentsValid_) computeComponents();
  return compMinActor_.size();
}

std::uint32_t AnalysisContext::componentOf(ActorId a) const {
  sync();
  if (!componentsValid_) computeComponents();
  return componentOf_[a.index()];
}

}  // namespace tpdf::core
