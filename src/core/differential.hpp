// Differential verification: the event-driven simulator as an
// independent oracle for the static analysis verdicts.
//
// For every corpus graph the harness cross-checks three invariants:
//   (a) boundedness <=> steady state: a graph analyzed as bounded must
//       simulate to completion and return every channel to its initial
//       occupancy (the dynamic Theorem 2 check); a non-live or
//       inconsistent graph must stall or be rejected by the simulator;
//   (b) buffer exactness: the minimumBuffers() capacities, imposed via a
//       back-pressure transform (a reverse channel per data channel
//       carrying the free space), admit a deadlock-free simulation at
//       exactly the computed sizes, and shrinking at least one channel
//       by one token must stall;
//   (c) throughput: the measured steady-state iteration period is
//       sandwiched between the actor workload bound (max over actors of
//       one iteration's serial execution time — exact for acyclic
//       graphs) and the canonical period's critical path.
//
// A failed invariant becomes a DiffRecord carrying the .tpdf text of the
// exact graph the simulator executed, so any discrepancy can be replayed
// with `tpdfc sim` / `tpdfc analyze` without re-running the harness.
// Checks that cannot be run soundly (control semantics, firing budgets,
// unsafe rates) are skipped with a per-graph reason, never guessed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "graph/graph.hpp"
#include "support/budget.hpp"
#include "support/json.hpp"
#include "symbolic/env.hpp"

namespace tpdf::core {

struct DiffOptions {
  /// Iterations for the boundedness and buffer simulations.
  std::int64_t iterations = 2;
  /// Firing budget per simulation; graphs whose repetition vector cannot
  /// complete within it skip the simulation-backed checks.
  std::int64_t maxFirings = 1'000'000;
  bool checkBoundedness = true;
  bool checkBuffers = true;
  bool checkThroughput = true;
  /// Contention invariant: the steady-state period on a contended
  /// platform (bandwidth-1 bus) must be at least the idealized bound
  /// and at least the uncontended period of the same placement.
  bool checkContention = true;
  /// Relative tolerance for the throughput sandwich.
  double throughputTolerance = 1e-6;
  /// Negative self-test: shrink every computed buffer capacity by one
  /// before the at-capacity run, so a healthy analyzer *must* produce
  /// discrepancy records (proves the harness detects broken verdicts).
  bool tamperBufferCapacities = false;

  /// Optional resource budget for one crossCheck() call: checkpointed
  /// throughout analysis, buffer sizing, scheduling and simulation.  A
  /// trip is recorded as a "resource-limit" DiffRecord (graceful
  /// degradation, never an unwind past crossCheck).  Also the hook for
  /// deterministic fault injection: `tpdfc verify --fault-sweep` arms a
  /// FaultInjector on the budget it passes here.  Must outlive the call.
  support::Budget* budget = nullptr;
};

/// One detected disagreement between the static verdict and the
/// simulation, with enough context to replay it.
struct DiffRecord {
  std::string graph;
  std::string file;    // source path when known, else empty
  std::string check;   // "boundedness" | "buffers" | "buffers-minus-one"
                       // | "throughput" | "contention" | "resource-limit"
                       // | "internal"
  std::string detail;  // what was expected vs. what the simulator did
  /// .tpdf text of the graph the simulator actually executed (for the
  /// buffer checks this is the back-pressure-transformed graph).
  std::string replay;

  support::json::Value toJson() const;
};

/// Per-graph summary: the static verdict plus which checks ran.
struct GraphVerdict {
  std::string graph;
  std::string file;
  bool bounded = false;
  std::vector<std::string> checksRun;
  /// "check: reason" for every check that could not be run soundly.
  std::vector<std::string> skipped;

  support::json::Value toJson() const;
};

struct DiffReport {
  std::vector<GraphVerdict> verdicts;
  std::vector<DiffRecord> records;

  bool ok() const { return records.empty(); }
  std::size_t checksRun() const;
  /// Records whose check is "resource-limit" (budget trips / injected
  /// faults) — callers distinguish these from genuine discrepancies.
  std::size_t resourceLimited() const;

  /// {"ok": bool, "graphs": [...], "discrepancies": [...],
  ///  "graphCount": N, "checkCount": N}.
  support::json::Value toJson() const;
};

/// Back-pressure transform: a structural copy of `g` where every data
/// channel c additionally gets a reverse channel from c's consumer back
/// to c's producer.  The reverse out-port mirrors the consumer's rates
/// and the reverse in-port the producer's, so producing requires free
/// space and consuming returns it; the reverse channel starts with
/// `capacity[c] - initialTokens(c)` tokens (the initially free space).
/// Actor/port construction order is preserved, so ActorIds, PortIds and
/// the forward ChannelIds coincide with `g`'s.  Throws support::Error
/// when a capacity is below the channel's initial tokens.
graph::Graph withChannelCapacities(
    const graph::Graph& g, const std::vector<std::int64_t>& capacity);

/// Runs every enabled cross-check on one graph and appends the verdict
/// (and any discrepancy records) to `report`.  Unbound parameters are
/// bound to 2 so the static and dynamic oracles see the same valuation.
void crossCheck(const TpdfGraph& model, const symbolic::Environment& env,
                const DiffOptions& options, DiffReport& report,
                const std::string& file = "");

}  // namespace tpdf::core
