#include "support/table.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace tpdf::support {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::addRow(std::vector<std::string> row) {
  if (row.size() > header_.size()) {
    throw Error("table row has more cells than the header");
  }
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto renderRow = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) line += " | ";
      line += row[c];
      line += std::string(widths[c] - row[c].size(), ' ');
    }
    // Trim right-padding of the last column.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = renderRow(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c != 0) out += "-+-";
    out += std::string(widths[c], '-');
  }
  out += "\n";
  for (const auto& row : rows_) out += renderRow(row);
  return out;
}

}  // namespace tpdf::support
