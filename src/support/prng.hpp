// Deterministic pseudo-random number generation for workloads and
// property-style tests.
//
// All synthetic data in this project (sampler sources, test sweeps,
// random graphs) flows through this generator so that every experiment is
// reproducible from its stated seed.
#pragma once

#include <cmath>
#include <cstdint>

namespace tpdf::support {

/// splitmix64: tiny, fast, excellent equidistribution for this use.
class Prng {
 public:
  explicit Prng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    state_ += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via Box-Muller (one value per call, no caching).
  double gaussian() {
    double u = 0.0;
    do {
      u = uniform01();
    } while (u <= 0.0);
    const double v = uniform01();
    return std::sqrt(-2.0 * std::log(u)) *
           std::cos(2.0 * 3.14159265358979323846 * v);
  }

  /// Bernoulli with probability p of returning true.
  bool chance(double p) { return uniform01() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace tpdf::support
