// A small-buffer vector for trivially copyable element types.
//
// The symbolic kernel stores monomial exponent lists and evaluation
// caches in these: almost every monomial in a real TPDF graph mentions
// at most two parameters, so the inline capacity removes the per-node
// heap allocation that a std::map (or std::vector) representation pays
// on every copy in the hot analysis loops.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <new>
#include <type_traits>

namespace tpdf::support {

/// Contiguous dynamic array with `N` elements of inline storage.
/// Restricted to trivially copyable, trivially destructible types so
/// that growth and moves are plain memcpy with no lifetime bookkeeping.
template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec requires trivially copyable elements");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  // User-provided (not defaulted) so const-qualified default-initialized
  // instances remain legal; the inline bytes need no initialization.
  SmallVec() {}

  SmallVec(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) data_[size_++] = v;
  }

  SmallVec& operator=(std::initializer_list<T> init) {
    clear();
    reserve(init.size());
    for (const T& v : init) data_[size_++] = v;
    return *this;
  }

  SmallVec(const SmallVec& o) { assign(o.data_, o.size_); }

  SmallVec(SmallVec&& o) noexcept {
    if (o.onHeap()) {
      data_ = o.data_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.data_ = o.inlineData();
      o.cap_ = N;
      o.size_ = 0;
    } else {
      assign(o.data_, o.size_);
      o.size_ = 0;
    }
  }

  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) assign(o.data_, o.size_);
    return *this;
  }

  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this == &o) return *this;
    if (o.onHeap()) {
      if (onHeap()) std::free(data_);
      data_ = o.data_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.data_ = o.inlineData();
      o.cap_ = N;
      o.size_ = 0;
    } else {
      assign(o.data_, o.size_);
      o.size_ = 0;
    }
    return *this;
  }

  ~SmallVec() {
    if (onHeap()) std::free(data_);
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cap_; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void clear() { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  // By value: `v` may alias an element of this vector, and growth frees
  // the old buffer (the pattern std::vector supports; keep supporting it).
  void push_back(T v) {
    if (size_ == cap_) grow(cap_ * 2);
    data_[size_++] = v;
  }

  void pop_back() { --size_; }

  void resize(std::size_t n) {
    reserve(n);
    if (n > size_) std::memset(data_ + size_, 0, (n - size_) * sizeof(T));
    size_ = n;
  }

  bool operator==(const SmallVec& o) const {
    return size_ == o.size_ && std::equal(begin(), end(), o.begin());
  }
  bool operator!=(const SmallVec& o) const { return !(*this == o); }

 private:
  T* inlineData() { return reinterpret_cast<T*>(inline_); }
  bool onHeap() const {
    return data_ != reinterpret_cast<const T*>(inline_);
  }

  void assign(const T* src, std::size_t n) {
    reserve(n);
    if (n != 0) std::memcpy(data_, src, n * sizeof(T));
    size_ = n;
  }

  void grow(std::size_t n) {
    const std::size_t cap = std::max<std::size_t>(n, 2 * N);
    T* p = static_cast<T*>(std::malloc(cap * sizeof(T)));
    if (p == nullptr) throw std::bad_alloc();
    if (size_ != 0) std::memcpy(p, data_, size_ * sizeof(T));
    if (onHeap()) std::free(data_);
    data_ = p;
    cap_ = cap;
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* data_ = inlineData();
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace tpdf::support
