// A hand-rolled JSON document builder (writer only, no parser).
//
// Every report type of the toolkit renders a machine-readable document
// through this Value type (the `toJson(...)` siblings of the
// `toString(...)` renderers), and `tpdfc --json` emits one such document
// per command.  Design constraints, in order:
//   * deterministic output — objects keep insertion order, so the same
//     report always serializes to the same bytes (golden tests diff it);
//   * no dependencies — the container image pins the toolchain, so this
//     is ~200 lines of std:: instead of a vendored library;
//   * strict RFC 8259 output — escaped strings, shortest round-trip
//     doubles via std::to_chars, non-finite doubles degrade to null.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "support/error.hpp"

namespace tpdf::support::json {

/// Escapes `s` for use inside a JSON string literal (quotes excluded).
/// Control characters below 0x20 become \u00XX; bytes >= 0x80 are passed
/// through untouched (input is assumed UTF-8).
inline std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          static const char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[c >> 4];
          out += hex[c & 0xF];
        } else {
          out += raw;
        }
    }
  }
  return out;
}

/// One JSON value: null, bool, integer, double, string, array or object.
/// Integers are kept distinct from doubles so counts serialize without a
/// fractional part.  Objects preserve insertion order.
class Value {
 public:
  using Array = std::vector<Value>;
  using Member = std::pair<std::string, Value>;
  using Object = std::vector<Member>;

  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}          // NOLINT
  Value(bool b) : data_(b) {}                        // NOLINT
  Value(int v) : data_(static_cast<std::int64_t>(v)) {}        // NOLINT
  Value(long v) : data_(static_cast<std::int64_t>(v)) {}       // NOLINT
  Value(long long v) : data_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Value(unsigned v) : data_(static_cast<std::int64_t>(v)) {}   // NOLINT
  Value(unsigned long v)                                       // NOLINT
      : data_(static_cast<std::int64_t>(v)) {}
  Value(unsigned long long v)                                  // NOLINT
      : data_(static_cast<std::int64_t>(v)) {}
  Value(double d) : data_(d) {}                      // NOLINT
  Value(std::string s) : data_(std::move(s)) {}      // NOLINT
  Value(const char* s) : data_(std::string(s)) {}    // NOLINT
  // Anything string_view-convertible (std::string_view itself,
  // graph::Name) — same SFINAE shape std::string uses, so plain strings
  // and literals keep hitting the exact-match overloads above.
  template <typename T>
    requires(std::is_convertible_v<const T&, std::string_view> &&
             !std::is_convertible_v<const T&, const char*> &&
             !std::is_same_v<std::decay_t<T>, std::string>)
  Value(const T& s)                                  // NOLINT
      : data_(std::string(std::string_view(s))) {}

  static Value object() {
    Value v;
    v.data_ = Object{};
    return v;
  }
  static Value array() {
    Value v;
    v.data_ = Array{};
    return v;
  }

  bool isNull() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool isBool() const { return std::holds_alternative<bool>(data_); }
  bool isInt() const { return std::holds_alternative<std::int64_t>(data_); }
  bool isDouble() const { return std::holds_alternative<double>(data_); }
  bool isString() const { return std::holds_alternative<std::string>(data_); }
  bool isArray() const { return std::holds_alternative<Array>(data_); }
  bool isObject() const { return std::holds_alternative<Object>(data_); }

  bool asBool() const { return std::get<bool>(data_); }
  std::int64_t asInt() const { return std::get<std::int64_t>(data_); }
  double asDouble() const { return std::get<double>(data_); }
  const std::string& asString() const { return std::get<std::string>(data_); }
  const Array& items() const { return std::get<Array>(data_); }
  const Object& members() const { return std::get<Object>(data_); }
  /// Mutable member access (lets callers move values out when splicing
  /// one document into another).
  Object& members() { return std::get<Object>(data_); }

  /// Sets `key` in an object (replacing an existing member in place, so
  /// insertion order is stable under overwrite).  Throws on non-objects.
  Value& set(std::string key, Value v) {
    Object& obj = mutableObject();
    for (Member& m : obj) {
      if (m.first == key) {
        m.second = std::move(v);
        return *this;
      }
    }
    obj.emplace_back(std::move(key), std::move(v));
    return *this;
  }

  /// Appends to an array.  Throws on non-arrays.
  Value& push(Value v) {
    if (!isArray()) {
      throw support::Error("json: push() on a non-array value");
    }
    std::get<Array>(data_).push_back(std::move(v));
    return *this;
  }

  /// Member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const {
    if (!isObject()) return nullptr;
    for (const Member& m : members()) {
      if (m.first == key) return &m.second;
    }
    return nullptr;
  }

  std::size_t size() const {
    if (isArray()) return items().size();
    if (isObject()) return members().size();
    return 0;
  }

  bool operator==(const Value& o) const { return data_ == o.data_; }
  bool operator!=(const Value& o) const { return !(*this == o); }

  /// Compact single-line serialization.
  std::string dump() const {
    std::string out;
    write(out, -1, 0);
    return out;
  }

  /// Indented multi-line serialization (`indent` spaces per level).
  std::string pretty(int indent = 2) const {
    std::string out;
    write(out, indent < 0 ? 0 : indent, 0);
    out += '\n';
    return out;
  }

 private:
  Object& mutableObject() {
    if (!isObject()) {
      throw support::Error("json: set() on a non-object value");
    }
    return std::get<Object>(data_);
  }

  static void writeNumber(std::string& out, std::int64_t v) {
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, res.ptr);
  }

  static void writeNumber(std::string& out, double v) {
    if (!std::isfinite(v)) {
      // JSON has no NaN/Infinity; degrade explicitly rather than emit an
      // invalid token.
      out += "null";
      return;
    }
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    std::string token(buf, res.ptr);
    // Keep the value recognizably floating-point: shortest-round-trip
    // renders 1.0 as "1", which would read back as an integer.
    if (token.find('.') == std::string::npos &&
        token.find('e') == std::string::npos) {
      token += ".0";
    }
    out += token;
  }

  void newline(std::string& out, int indent, int depth) const {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * depth), ' ');
  }

  /// `indent` < 0 means compact.
  void write(std::string& out, int indent, int depth) const {
    if (isNull()) {
      out += "null";
    } else if (isBool()) {
      out += asBool() ? "true" : "false";
    } else if (isInt()) {
      writeNumber(out, asInt());
    } else if (isDouble()) {
      writeNumber(out, asDouble());
    } else if (isString()) {
      out += '"';
      out += escape(asString());
      out += '"';
    } else if (isArray()) {
      const Array& arr = items();
      if (arr.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      bool first = true;
      for (const Value& v : arr) {
        if (!first) out += ',';
        first = false;
        newline(out, indent, depth + 1);
        v.write(out, indent, depth + 1);
      }
      newline(out, indent, depth);
      out += ']';
    } else {
      const Object& obj = members();
      if (obj.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const Member& m : obj) {
        if (!first) out += ',';
        first = false;
        newline(out, indent, depth + 1);
        out += '"';
        out += escape(m.first);
        out += "\":";
        if (indent > 0) out += ' ';
        m.second.write(out, indent, depth + 1);
      }
      newline(out, indent, depth);
      out += '}';
    }
  }

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      data_;
};

}  // namespace tpdf::support::json
