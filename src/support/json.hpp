// A hand-rolled JSON document model: builder/writer plus a strict
// RFC 8259 parser (`parse()` below).
//
// Every report type of the toolkit renders a machine-readable document
// through this Value type (the `toJson(...)` siblings of the
// `toString(...)` renderers), and `tpdfc --json` emits one such document
// per command.  The parser is the other direction: the `tpdfd` daemon
// frames newline-delimited request documents off a socket and needs
// line/column-positioned rejections for malformed ones, and the test
// suites use the same implementation as their round-trip oracle.
// Design constraints, in order:
//   * deterministic output — objects keep insertion order, so the same
//     report always serializes to the same bytes (golden tests diff it);
//   * no dependencies — the container image pins the toolchain, so this
//     is a few hundred lines of std:: instead of a vendored library;
//   * strict RFC 8259 — escaped strings, shortest round-trip doubles via
//     std::to_chars, non-finite doubles degrade to null on output; the
//     parser accepts exactly the RFC grammar (no comments, no trailing
//     commas, no bare control characters) and throws ParseError with a
//     1-based line/column on the first violation.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "support/error.hpp"

namespace tpdf::support::json {

/// Escapes `s` for use inside a JSON string literal (quotes excluded).
/// Control characters below 0x20 become \u00XX; bytes >= 0x80 are passed
/// through untouched (input is assumed UTF-8).
inline std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          static const char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[c >> 4];
          out += hex[c & 0xF];
        } else {
          out += raw;
        }
    }
  }
  return out;
}

/// One JSON value: null, bool, integer, double, string, array or object.
/// Integers are kept distinct from doubles so counts serialize without a
/// fractional part.  Objects preserve insertion order.
class Value {
 public:
  using Array = std::vector<Value>;
  using Member = std::pair<std::string, Value>;
  using Object = std::vector<Member>;

  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}          // NOLINT
  Value(bool b) : data_(b) {}                        // NOLINT
  Value(int v) : data_(static_cast<std::int64_t>(v)) {}        // NOLINT
  Value(long v) : data_(static_cast<std::int64_t>(v)) {}       // NOLINT
  Value(long long v) : data_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Value(unsigned v) : data_(static_cast<std::int64_t>(v)) {}   // NOLINT
  Value(unsigned long v)                                       // NOLINT
      : data_(static_cast<std::int64_t>(v)) {}
  Value(unsigned long long v)                                  // NOLINT
      : data_(static_cast<std::int64_t>(v)) {}
  Value(double d) : data_(d) {}                      // NOLINT
  Value(std::string s) : data_(std::move(s)) {}      // NOLINT
  Value(const char* s) : data_(std::string(s)) {}    // NOLINT
  // Anything string_view-convertible (std::string_view itself,
  // graph::Name) — same SFINAE shape std::string uses, so plain strings
  // and literals keep hitting the exact-match overloads above.
  template <typename T>
    requires(std::is_convertible_v<const T&, std::string_view> &&
             !std::is_convertible_v<const T&, const char*> &&
             !std::is_same_v<std::decay_t<T>, std::string>)
  Value(const T& s)                                  // NOLINT
      : data_(std::string(std::string_view(s))) {}

  static Value object() {
    Value v;
    v.data_ = Object{};
    return v;
  }
  static Value array() {
    Value v;
    v.data_ = Array{};
    return v;
  }

  bool isNull() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool isBool() const { return std::holds_alternative<bool>(data_); }
  bool isInt() const { return std::holds_alternative<std::int64_t>(data_); }
  bool isDouble() const { return std::holds_alternative<double>(data_); }
  bool isString() const { return std::holds_alternative<std::string>(data_); }
  bool isArray() const { return std::holds_alternative<Array>(data_); }
  bool isObject() const { return std::holds_alternative<Object>(data_); }

  bool asBool() const { return std::get<bool>(data_); }
  std::int64_t asInt() const { return std::get<std::int64_t>(data_); }
  double asDouble() const { return std::get<double>(data_); }
  const std::string& asString() const { return std::get<std::string>(data_); }
  const Array& items() const { return std::get<Array>(data_); }
  const Object& members() const { return std::get<Object>(data_); }
  /// Mutable member access (lets callers move values out when splicing
  /// one document into another).
  Object& members() { return std::get<Object>(data_); }

  /// Sets `key` in an object (replacing an existing member in place, so
  /// insertion order is stable under overwrite).  Throws on non-objects.
  Value& set(std::string key, Value v) {
    Object& obj = mutableObject();
    for (Member& m : obj) {
      if (m.first == key) {
        m.second = std::move(v);
        return *this;
      }
    }
    obj.emplace_back(std::move(key), std::move(v));
    return *this;
  }

  /// Appends to an array.  Throws on non-arrays.
  Value& push(Value v) {
    if (!isArray()) {
      throw support::Error("json: push() on a non-array value");
    }
    std::get<Array>(data_).push_back(std::move(v));
    return *this;
  }

  /// Member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const {
    if (!isObject()) return nullptr;
    for (const Member& m : members()) {
      if (m.first == key) return &m.second;
    }
    return nullptr;
  }

  std::size_t size() const {
    if (isArray()) return items().size();
    if (isObject()) return members().size();
    return 0;
  }

  bool operator==(const Value& o) const { return data_ == o.data_; }
  bool operator!=(const Value& o) const { return !(*this == o); }

  /// Compact single-line serialization.
  std::string dump() const {
    std::string out;
    write(out, -1, 0);
    return out;
  }

  /// Indented multi-line serialization (`indent` spaces per level).
  std::string pretty(int indent = 2) const {
    std::string out;
    write(out, indent < 0 ? 0 : indent, 0);
    out += '\n';
    return out;
  }

 private:
  Object& mutableObject() {
    if (!isObject()) {
      throw support::Error("json: set() on a non-object value");
    }
    return std::get<Object>(data_);
  }

  static void writeNumber(std::string& out, std::int64_t v) {
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, res.ptr);
  }

  static void writeNumber(std::string& out, double v) {
    if (!std::isfinite(v)) {
      // JSON has no NaN/Infinity; degrade explicitly rather than emit an
      // invalid token.
      out += "null";
      return;
    }
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    std::string token(buf, res.ptr);
    // Keep the value recognizably floating-point: shortest-round-trip
    // renders 1.0 as "1", which would read back as an integer.
    if (token.find('.') == std::string::npos &&
        token.find('e') == std::string::npos) {
      token += ".0";
    }
    out += token;
  }

  void newline(std::string& out, int indent, int depth) const {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * depth), ' ');
  }

  /// `indent` < 0 means compact.
  void write(std::string& out, int indent, int depth) const {
    if (isNull()) {
      out += "null";
    } else if (isBool()) {
      out += asBool() ? "true" : "false";
    } else if (isInt()) {
      writeNumber(out, asInt());
    } else if (isDouble()) {
      writeNumber(out, asDouble());
    } else if (isString()) {
      out += '"';
      out += escape(asString());
      out += '"';
    } else if (isArray()) {
      const Array& arr = items();
      if (arr.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      bool first = true;
      for (const Value& v : arr) {
        if (!first) out += ',';
        first = false;
        newline(out, indent, depth + 1);
        v.write(out, indent, depth + 1);
      }
      newline(out, indent, depth);
      out += ']';
    } else {
      const Object& obj = members();
      if (obj.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const Member& m : obj) {
        if (!first) out += ',';
        first = false;
        newline(out, indent, depth + 1);
        out += '"';
        out += escape(m.first);
        out += "\":";
        if (indent > 0) out += ' ';
        m.second.write(out, indent, depth + 1);
      }
      newline(out, indent, depth);
      out += '}';
    }
  }

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      data_;
};

namespace detail {

/// Recursive-descent RFC 8259 parser over a complete document.  Hoisted
/// from the test suites' strict oracle (tests/strict_json.hpp) so the
/// serving layer and the tests share one implementation; every rejection
/// is a support::ParseError carrying the 1-based line/column of the
/// offending byte.  Nesting is depth-limited so an adversarial request
/// cannot overflow the stack.
class Parser {
 public:
  static constexpr int kMaxDepth = 64;

  explicit Parser(std::string_view text) : text_(text) {}

  Value parse() {
    skipWs();
    Value v = parseValue(0);
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw ParseError("json: " + why, line_, column_);
  }

  bool atEnd() const { return pos_ >= text_.size(); }

  char peek() {
    if (atEnd()) fail("unexpected end of document");
    return text_[pos_];
  }

  char get() {
    const char c = peek();
    ++pos_;
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void expect(char c, const char* where) {
    if (atEnd() || peek() != c) {
      fail(std::string("expected '") + c + "' in " + where);
    }
    get();
  }

  void skipWs() {
    while (!atEnd()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return;
      get();
    }
  }

  void literal(std::string_view word) {
    for (const char expected : word) {
      if (atEnd() || peek() != expected) fail("invalid literal");
      get();
    }
  }

  Value parseValue(int depth) {
    if (depth > kMaxDepth) fail("document nested too deeply");
    switch (peek()) {
      case '{': return parseObject(depth);
      case '[': return parseArray(depth);
      case '"': return Value(parseString());
      case 't': literal("true"); return Value(true);
      case 'f': literal("false"); return Value(false);
      case 'n': literal("null"); return Value(nullptr);
      default: return parseNumber();
    }
  }

  Value parseObject(int depth) {
    expect('{', "object");
    auto obj = Value::object();
    skipWs();
    if (peek() == '}') {
      get();
      return obj;
    }
    while (true) {
      skipWs();
      if (peek() != '"') fail("object member name must be a string");
      std::string key = parseString();
      skipWs();
      expect(':', "object member");
      skipWs();
      obj.set(std::move(key), parseValue(depth + 1));
      skipWs();
      const char c = get();
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parseArray(int depth) {
    expect('[', "array");
    auto arr = Value::array();
    skipWs();
    if (peek() == ']') {
      get();
      return arr;
    }
    while (true) {
      skipWs();
      arr.push(parseValue(depth + 1));
      skipWs();
      const char c = get();
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  /// One \uXXXX escape (the four hex digits; the prefix was consumed).
  unsigned parseHex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = get();
      code <<= 4;
      if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a') + 10;
      else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A') + 10;
      else fail("invalid \\u escape (four hex digits required)");
    }
    return code;
  }

  /// Appends `code` (a Unicode scalar value) to `out` as UTF-8.
  static void appendUtf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string parseString() {
    expect('"', "string");
    std::string out;
    while (true) {
      const char c = get();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string (use \\u escapes)");
      }
      if (c != '\\') {
        out += c;  // bytes >= 0x80 pass through (input is UTF-8)
        continue;
      }
      const char esc = get();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = parseHex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (atEnd() || get() != '\\' || atEnd() || get() != 'u') {
              fail("unpaired surrogate in \\u escape");
            }
            const unsigned low = parseHex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("invalid low surrogate in \\u escape");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired surrogate in \\u escape");
          }
          appendUtf8(out, code);
          break;
        }
        default:
          fail("invalid escape sequence in string");
      }
    }
  }

  Value parseNumber() {
    const std::size_t start = pos_;
    bool isDouble = false;
    if (peek() == '-') get();
    // Integer part: "0" alone or a nonzero-led digit run (RFC 8259
    // forbids leading zeros).
    if (atEnd() || !isDigit(peek())) fail("invalid number");
    if (get() != '0') {
      while (!atEnd() && isDigit(peek())) get();
    } else if (!atEnd() && isDigit(peek())) {
      fail("invalid number (leading zero)");
    }
    if (!atEnd() && peek() == '.') {
      isDouble = true;
      get();
      if (atEnd() || !isDigit(peek())) fail("invalid number (bare decimal point)");
      while (!atEnd() && isDigit(peek())) get();
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
      isDouble = true;
      get();
      if (!atEnd() && (peek() == '+' || peek() == '-')) get();
      if (atEnd() || !isDigit(peek())) fail("invalid number (empty exponent)");
      while (!atEnd() && isDigit(peek())) get();
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (!isDouble) {
      std::int64_t value = 0;
      const auto res =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (res.ec == std::errc() && res.ptr == token.data() + token.size()) {
        return Value(value);
      }
      // Out of int64 range: keep the value, as a double.
    }
    // std::from_chars(double) is still patchy across standard libraries;
    // strtod on a NUL-terminated copy is fully portable and the token is
    // short.
    const std::string copy(token);
    return Value(std::strtod(copy.c_str(), nullptr));
  }

  static bool isDigit(char c) { return c >= '0' && c <= '9'; }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace detail

/// Parses one complete, strict RFC 8259 document.  Throws
/// support::ParseError with the 1-based line/column of the first
/// violation (malformed syntax, bare control characters, trailing
/// garbage, nesting beyond detail::Parser::kMaxDepth).  Numbers without
/// fraction/exponent parse as int64 (falling back to double outside the
/// int64 range); \uXXXX escapes decode to UTF-8, surrogate pairs
/// included.
inline Value parse(std::string_view text) { return detail::Parser(text).parse(); }

}  // namespace tpdf::support::json
