// Small string helpers used across the project.
#pragma once

#include <string>
#include <vector>

namespace tpdf::support {

/// Joins the elements of `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// True if `s` starts with `prefix`.
bool startsWith(const std::string& s, const std::string& prefix);

/// Strips ASCII whitespace from both ends.
std::string trim(const std::string& s);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> split(const std::string& s, char sep);

/// Renders a double with `digits` significant digits, trimming trailing
/// zeros ("12.5", "3", "0.001").
std::string formatDouble(double v, int digits = 6);

}  // namespace tpdf::support
