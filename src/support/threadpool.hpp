// A fixed-size thread pool with a single shared FIFO queue.
//
// Deliberately work-stealing-free: batch analysis jobs are coarse (one
// whole graph each), so a mutex-guarded central queue is contention-free
// in practice and keeps completion order reasoning trivial.  Workers are
// spawned once at construction and joined at destruction; submit() after
// shutdown is a contract violation.
//
// Exceptions thrown by a job are the job's responsibility — wrap the
// body in try/catch and record the failure (core::analyzeBatch does).
// An exception escaping a job would terminate the process, so the pool
// catches and drops it as a last resort.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tpdf::support {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { workerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wakeWorkers_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const { return workers_.size(); }

  /// Enqueues a job; it runs on some worker, FIFO relative to other
  /// submissions.
  void submit(std::function<void()> job) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_.push_back(std::move(job));
      ++pending_;
    }
    wakeWorkers_.notify_one();
  }

  /// Blocks until every submitted job has finished running (queue empty
  /// and no job in flight).  Jobs may keep submitting more work; wait()
  /// returns only once the whole transitive batch has drained.
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return pending_ == 0; });
  }

 private:
  void workerLoop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wakeWorkers_.wait(lock,
                          [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      try {
        job();
      } catch (...) {
        // Last-resort containment; jobs are expected to catch their own.
      }
      {
        std::unique_lock<std::mutex> lock(mutex_);
        if (--pending_ == 0) idle_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable wakeWorkers_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t pending_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tpdf::support
