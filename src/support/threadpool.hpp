// A fixed-size thread pool with a single shared FIFO queue.
//
// Deliberately work-stealing-free: batch analysis jobs are coarse (one
// whole graph each), so a mutex-guarded central queue is contention-free
// in practice and keeps completion order reasoning trivial.  Workers are
// spawned once at construction and joined at destruction; submit() after
// shutdown is a contract violation.
//
// Jobs are still encouraged to catch their own exceptions and record
// failures in their result slots (core::analyzeBatch does) — but an
// exception that *does* escape a job no longer vanishes: the pool
// captures the first one and rethrows it from the next wait(), so
// driver bugs surface instead of silently producing torn batches.
// Later escapes (after the first) are dropped; the destructor never
// throws and always joins.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace tpdf::support {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { workerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wakeWorkers_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const { return workers_.size(); }

  /// Enqueues a job; it runs on some worker, FIFO relative to other
  /// submissions.
  void submit(std::function<void()> job) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_.push_back(std::move(job));
      ++pending_;
    }
    wakeWorkers_.notify_one();
  }

  /// Blocks until every submitted job has finished running (queue empty
  /// and no job in flight).  Jobs may keep submitting more work; wait()
  /// returns only once the whole transitive batch has drained.  If any
  /// job let an exception escape since the last wait(), the first such
  /// exception is rethrown here (and the stored error is cleared).
  void wait() {
    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      idle_.wait(lock, [this] { return pending_ == 0; });
      error = std::exchange(firstError_, nullptr);
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  void workerLoop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wakeWorkers_.wait(lock,
                          [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      std::exception_ptr escaped;
      try {
        job();
      } catch (...) {
        escaped = std::current_exception();
      }
      {
        std::unique_lock<std::mutex> lock(mutex_);
        if (escaped && !firstError_) firstError_ = escaped;
        if (--pending_ == 0) idle_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable wakeWorkers_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t pending_ = 0;
  bool stopping_ = false;
  std::exception_ptr firstError_;  // first job escape since last wait()
  std::vector<std::thread> workers_;
};

}  // namespace tpdf::support
