// Cooperative resource governance for long-running analyses.
//
// A Budget carries an optional wall-clock deadline, an atomic cancel
// flag (settable from another thread), and a work counter with an
// optional cap.  Analysis loops call checkpoint() at their loop heads;
// when a limit trips, checkpoint() throws BudgetExceeded, a typed
// support::Error that the api layer maps to the stable `resource-limit`
// diagnostic (exit code 4).  A null Budget* means "unlimited" and every
// call site guards with `Budget::checkpoint(budget)`, which compiles to
// a single pointer test.
//
// Checkpoints are designed to be cheap enough for the hottest loops
// (one firing of the liveness scheduler per checkpoint): the fast path
// is an increment, a decrement and a branch, and the full checks — the
// relaxed-atomic cancel flag, the work cap, the steady_clock read — run
// on a kClockStride stride that is clamped so the deterministic events
// (work cap, armed fault) still fire at exactly their checkpoint.  A
// generous budget therefore costs <2% on BM_LivenessOnChain/1000 while
// cancellation and a 1ms deadline still trip within 64 checkpoints.
//
// The deterministic FaultInjector arms a budget to throw at exactly the
// Nth checkpoint.  Because every interruption path through the stack is
// a checkpoint, sweeping N over [1, totalCheckpoints] systematically
// exercises every unwind path — `tpdfc verify --fault-sweep` does this
// over the scenario corpus, and must always produce a structured
// diagnostic, never a crash, hang, leak, or torn result.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "support/error.hpp"

namespace tpdf::support {

/// Thrown by Budget::checkpoint() when a resource limit trips.
class BudgetExceeded : public Error {
 public:
  enum class Kind { Deadline, Cancelled, Work, Injected };

  BudgetExceeded(Kind kind, const std::string& what)
      : Error(what), kind_(kind) {}

  Kind kind() const { return kind_; }

  /// Stable lower-case name for diagnostics: "deadline", "cancelled",
  /// "work", "injected".
  const char* kindName() const {
    switch (kind_) {
      case Kind::Deadline: return "deadline";
      case Kind::Cancelled: return "cancelled";
      case Kind::Work: return "work";
      case Kind::Injected: return "injected";
    }
    return "unknown";
  }

 private:
  Kind kind_;
};

/// Deterministic fault injection: fire at exactly the Nth checkpoint
/// (1-based).  `fireAt == 0` is disarmed.
struct FaultInjector {
  std::uint64_t fireAt = 0;

  /// Reads the checkpoint index from an environment variable (default
  /// TPDF_FAULT_CHECKPOINT); absent/invalid/zero means disarmed.  Lets
  /// external harnesses inject faults into an unmodified tpdfc.
  static FaultInjector fromEnv(const char* name = "TPDF_FAULT_CHECKPOINT") {
    FaultInjector injector;
    const char* value = std::getenv(name);
    if (value == nullptr) return injector;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end != value && *end == '\0') injector.fireAt = parsed;
    return injector;
  }
};

/// A cooperative resource budget.  Not internally synchronized except
/// for the cancel flag: one thread runs the analysis (and calls
/// checkpoint()); any thread may call cancel().
class Budget {
 public:
  using Clock = std::chrono::steady_clock;

  /// The full checks (clock read, cancel flag) run once per this many
  /// checkpoints; it bounds how late cancellation and the deadline are
  /// observed.
  static constexpr std::uint64_t kClockStride = 64;

  Budget() = default;

  /// Convenience: a budget with limits taken from request-style fields
  /// (0 = unlimited for both).
  Budget(std::int64_t timeoutMs, std::int64_t maxWork) {
    if (timeoutMs > 0) setTimeout(std::chrono::milliseconds(timeoutMs));
    if (maxWork > 0) setMaxWork(static_cast<std::uint64_t>(maxWork));
  }

  /// Arms a wall-clock deadline `timeout` from now.
  void setTimeout(std::chrono::milliseconds timeout) {
    deadline_ = Clock::now() + timeout;
    hasDeadline_ = true;
    reschedule();
  }

  /// Arms an absolute wall-clock deadline.
  void setDeadline(Clock::time_point deadline) {
    deadline_ = deadline;
    hasDeadline_ = true;
    reschedule();
  }

  /// Caps the total number of checkpoints (work units) at `maxWork`.
  void setMaxWork(std::uint64_t maxWork) {
    maxWork_ = maxWork;
    reschedule();
  }

  /// Arms deterministic fault injection at the Nth checkpoint.
  void arm(FaultInjector injector) {
    faultAt_ = injector.fireAt;
    reschedule();
  }

  /// Makes this budget also observe `parent`'s cancel flag.  This is how
  /// the sweep/batch/verify drivers give every work unit its own
  /// (single-threaded) budget while one run-wide cancel stops them all:
  /// each worker-local budget chains to the shared parent, and reading
  /// the parent's atomic flag from many threads is race-free.  `parent`
  /// must outlive this budget; nullptr unchains.
  void chainCancel(const Budget* parent) {
    parent_ = parent;
    reschedule();
  }

  /// Requests cooperative cancellation; safe from any thread.  The
  /// running analysis observes it within kClockStride checkpoints.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True if any limit is armed (callers may skip budget plumbing
  /// entirely for a fully-unlimited budget).
  bool limited() const {
    return hasDeadline_ || maxWork_ != 0 || faultAt_ != 0 ||
           parent_ != nullptr || cancelled();
  }

  /// Checkpoints executed so far (= work consumed).
  std::uint64_t work() const { return work_; }

  /// One unit of work.  Throws BudgetExceeded when the work cap, the
  /// cancel flag, an armed fault, or the deadline trips.  The fast path
  /// is one increment, one decrement and one branch: the full checks run
  /// on a stride that is exact for the deterministic limits (the work
  /// cap and an armed fault always fire at precisely their checkpoint)
  /// and bounds the asynchronous ones (cancellation and the deadline are
  /// observed within kClockStride checkpoints).
  void checkpoint() {
    ++work_;
    if (--untilSlow_ > 0) return;
    slowCheckpoint();
  }

  /// Bulk form: accounts `n` units at once.  Semantics match n single
  /// checkpoints except that a limit crossed inside the batch is
  /// detected at the batch boundary (an armed fault still fires exactly
  /// once, attributed to its armed checkpoint index).  Hot loops that
  /// cannot afford even the inlined fast path accumulate counts in a
  /// stack local and charge() them in lumps.
  void charge(std::uint64_t n) {
    if (n == 0) return;
    work_ += n;
    untilSlow_ -= static_cast<std::int64_t>(n);
    if (untilSlow_ > 0) return;
    slowCheckpoint();
  }

  /// Null-safe checkpoint: the form every analysis loop uses, so a
  /// caller without a budget pays one pointer test.
  static void checkpoint(Budget* budget) {
    if (budget != nullptr) budget->checkpoint();
  }

 private:
  /// The strided check: throws on any tripped limit, then schedules the
  /// next slow checkpoint so no deterministic event can be overshot.
  /// Kept out of line so checkpoint() stays small enough to inline into
  /// the analysis loops.
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((noinline, cold))
#endif
  void slowCheckpoint() {
    const std::uint64_t n = work_;
    // Crossing check (not equality): charge() may step past the armed
    // index inside a batch.  A fault fires exactly once.
    if (faultAt_ != 0 && !faultFired_ && n >= faultAt_) {
      faultFired_ = true;
      throw BudgetExceeded(
          BudgetExceeded::Kind::Injected,
          "injected fault at checkpoint " + std::to_string(faultAt_));
    }
    if (maxWork_ != 0 && n > maxWork_) {
      throw BudgetExceeded(
          BudgetExceeded::Kind::Work,
          "work budget exceeded (" + std::to_string(maxWork_) + " units)");
    }
    if (cancelled_.load(std::memory_order_relaxed) ||
        (parent_ != nullptr && parent_->cancelled())) {
      throw BudgetExceeded(BudgetExceeded::Kind::Cancelled,
                           "analysis cancelled");
    }
    if (hasDeadline_ && Clock::now() >= deadline_) {
      throw BudgetExceeded(BudgetExceeded::Kind::Deadline,
                           "deadline exceeded");
    }
    // Next slow checkpoint: the clock stride, clamped so the exact
    // events (fault checkpoint, first checkpoint past the work cap) are
    // never skipped over.
    std::uint64_t d = kClockStride;
    if (faultAt_ > n && faultAt_ - n < d) d = faultAt_ - n;
    if (maxWork_ != 0 && maxWork_ >= n && maxWork_ + 1 - n < d) {
      d = maxWork_ + 1 - n;
    }
    untilSlow_ = static_cast<std::int64_t>(d);
  }

  /// Limit changes take effect at the very next checkpoint.
  void reschedule() { untilSlow_ = 1; }

  Clock::time_point deadline_{};
  bool hasDeadline_ = false;
  std::uint64_t maxWork_ = 0;   // 0 = unlimited
  std::uint64_t faultAt_ = 0;   // 0 = disarmed
  bool faultFired_ = false;
  std::uint64_t work_ = 0;
  std::int64_t untilSlow_ = 1;  // full checks on the first checkpoint
  const Budget* parent_ = nullptr;     // chained cancel source
  std::atomic<bool> cancelled_{false};
};

}  // namespace tpdf::support
