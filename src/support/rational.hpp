// Exact rational arithmetic over checked 64-bit integers.
//
// Repetition vectors are computed over the rationals (Theorem 1 of the
// paper solves Gamma * r = 0, then normalizes the solution to the smallest
// integer vector), so an exact, always-normalized rational type is the
// bedrock of every analysis in this project.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace tpdf::support {

/// An exact rational number num/den with den > 0 and gcd(num, den) == 1.
/// All operations are overflow-checked and keep the value normalized.
class Rational {
 public:
  constexpr Rational() = default;
  Rational(std::int64_t num);  // NOLINT(google-explicit-constructor)
  Rational(std::int64_t num, std::int64_t den);

  std::int64_t num() const { return num_; }
  std::int64_t den() const { return den_; }

  bool isZero() const { return num_ == 0; }
  bool isOne() const { return num_ == 1 && den_ == 1; }
  bool isInteger() const { return den_ == 1; }
  bool isPositive() const { return num_ > 0; }
  bool isNegative() const { return num_ < 0; }

  /// The integer value; throws Error unless isInteger().
  std::int64_t toInteger() const;

  double toDouble() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  Rational operator-() const;
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator/(const Rational& o) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  Rational inverse() const;
  Rational abs() const;

  bool operator==(const Rational& o) const {
    return num_ == o.num_ && den_ == o.den_;
  }
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const;
  bool operator<=(const Rational& o) const { return !(o < *this); }
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator>=(const Rational& o) const { return !(*this < o); }

  /// "3", "-5/2".
  std::string toString() const;

 private:
  void normalize();

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

/// gcd of two non-negative rationals: gcd(a/b, c/d) = gcd(a*d, c*b)/(b*d)
/// normalized.  This is the natural extension used to reduce a rational
/// solution vector to the minimal integer vector.  gcd(0, x) == x.
Rational rationalGcd(const Rational& a, const Rational& b);

/// lcm counterpart of rationalGcd; lcm(0, x) == 0.
Rational rationalLcm(const Rational& a, const Rational& b);

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace tpdf::support
