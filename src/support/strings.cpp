#include "support/strings.hpp"

#include <cctype>
#include <sstream>

namespace tpdf::support {

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool startsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string field;
  for (char c : s) {
    if (c == sep) {
      out.push_back(field);
      field.clear();
    } else {
      field += c;
    }
  }
  out.push_back(field);
  return out;
}

std::string formatDouble(double v, int digits) {
  std::ostringstream os;
  os.precision(digits);
  os << v;
  return os.str();
}

}  // namespace tpdf::support
