#include "support/rational.hpp"

#include <ostream>

#include "support/checked.hpp"
#include "support/error.hpp"

namespace tpdf::support {

Rational::Rational(std::int64_t num) : num_(num), den_(1) {}

Rational::Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  normalize();
}

void Rational::normalize() {
  if (den_ == 0) {
    throw DivisionByZeroError("rational with zero denominator");
  }
  if (den_ < 0) {
    num_ = checkedNeg(num_);
    den_ = checkedNeg(den_);
  }
  if (num_ == 0) {
    den_ = 1;
    return;
  }
  const std::int64_t g = gcd64(num_, den_);
  num_ /= g;
  den_ /= g;
}

std::int64_t Rational::toInteger() const {
  if (!isInteger()) {
    throw Error("rational " + toString() + " is not an integer");
  }
  return num_;
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = checkedNeg(num_);
  r.den_ = den_;
  return r;
}

Rational Rational::operator+(const Rational& o) const {
  // Use the lcm of the denominators to keep intermediates small.
  const std::int64_t g = gcd64(den_, o.den_);
  const std::int64_t lhs = checkedMul(num_, o.den_ / g);
  const std::int64_t rhs = checkedMul(o.num_, den_ / g);
  return Rational(checkedAdd(lhs, rhs), checkedMul(den_ / g, o.den_));
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  // Cross-cancel before multiplying to avoid spurious overflow.
  const std::int64_t g1 = gcd64(num_, o.den_);
  const std::int64_t g2 = gcd64(o.num_, den_);
  return Rational(checkedMul(num_ / g1, o.num_ / g2),
                  checkedMul(den_ / g2, o.den_ / g1));
}

Rational Rational::operator/(const Rational& o) const {
  return *this * o.inverse();
}

Rational Rational::inverse() const {
  if (num_ == 0) {
    throw DivisionByZeroError("inverse of zero rational");
  }
  return Rational(den_, num_);
}

Rational Rational::abs() const { return num_ < 0 ? -*this : *this; }

bool Rational::operator<(const Rational& o) const {
  // num_/den_ < o.num_/o.den_  <=>  num_*o.den_ < o.num_*den_ (dens > 0).
  return checkedMul(num_, o.den_) < checkedMul(o.num_, den_);
}

std::string Rational::toString() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational rationalGcd(const Rational& a, const Rational& b) {
  if (a.isZero()) return b.abs();
  if (b.isZero()) return a.abs();
  return Rational(gcd64(a.num(), b.num()), lcm64(a.den(), b.den()));
}

Rational rationalLcm(const Rational& a, const Rational& b) {
  if (a.isZero() || b.isZero()) return Rational(0);
  return Rational(lcm64(a.num(), b.num()), gcd64(a.den(), b.den()));
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.toString();
}

}  // namespace tpdf::support
