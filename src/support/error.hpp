// Error types shared by every tpdf library.
//
// Analyses report *expected* negative outcomes (inconsistent graph,
// deadlock, unsafe control area) through result/report value types, never
// through exceptions.  Exceptions are reserved for contract violations and
// malformed inputs: out-of-range ids, arithmetic overflow, parse errors.
#pragma once

#include <stdexcept>
#include <string>

namespace tpdf::support {

/// Base class of every exception thrown by this project.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a checked integer operation would overflow.
class OverflowError : public Error {
 public:
  explicit OverflowError(const std::string& what) : Error(what) {}
};

/// Thrown on division by zero in exact arithmetic.
class DivisionByZeroError : public Error {
 public:
  explicit DivisionByZeroError(const std::string& what) : Error(what) {}
};

/// Thrown when a graph is structurally malformed (dangling port, duplicate
/// name, control channel into a data port, ...).  Distinct from an analysis
/// returning "not consistent": a malformed graph cannot even be analyzed.
class ModelError : public Error {
 public:
  explicit ModelError(const std::string& what) : Error(what) {}
};

/// Thrown by the .tpdf text-format reader on syntax errors.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line, int column)
      : Error(what + " at line " + std::to_string(line) + ", column " +
              std::to_string(column)),
        message_(what),
        line_(line),
        column_(column) {}

  /// The bare message, without the appended position suffix — what a
  /// handler needs to rethrow at a corrected position (the .tpdf reader
  /// remaps expression-local rate-parse positions to file positions).
  const std::string& message() const { return message_; }

  int line() const { return line_; }
  int column() const { return column_; }

 private:
  std::string message_;
  int line_;
  int column_;
};

}  // namespace tpdf::support
