// Plain-text table rendering for the benchmark harnesses.
//
// Every figure/table reproduction prints its rows through this class so
// the bench output is uniform and directly comparable with the paper.
#pragma once

#include <string>
#include <vector>

namespace tpdf::support {

/// Accumulates rows of strings and renders them as an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; it may have fewer cells than the header (the rest are
  /// rendered empty) but not more.
  void addRow(std::vector<std::string> row);

  std::size_t rowCount() const { return rows_.size(); }

  /// Renders with a header rule, e.g.
  ///   beta | TPDF | CSDF | improvement
  ///   -----+------+------+------------
  ///   10   | ...  | ...  | ...
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tpdf::support
