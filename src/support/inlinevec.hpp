// A small-buffer vector for arbitrary (non-trivial) element types.
//
// SmallVec (smallvec.hpp) covers trivially copyable payloads with pure
// memcpy growth; InlineVec is its sibling for real C++ objects — the
// symbolic kernel keeps Expr term lists and RateSeq entries in these.
// Almost every rate expression in a real graph is a single constant or a
// single monomial, so one inline slot removes the per-expression heap
// allocation that a std::vector representation pays on every construction
// and copy in the graph-build and repetition-solve loops.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <new>
#include <utility>

namespace tpdf::support {

/// Contiguous dynamic array with `N` elements of inline storage and full
/// object lifetime management (construct/destroy, move-aware growth).
template <typename T, std::size_t N>
class InlineVec {
  static_assert(N > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  InlineVec() {}

  InlineVec(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) ::new (data_ + size_++) T(v);
  }

  InlineVec(const InlineVec& o) {
    reserve(o.size_);
    for (std::size_t i = 0; i < o.size_; ++i) {
      ::new (data_ + i) T(o.data_[i]);
    }
    size_ = o.size_;
  }

  InlineVec(InlineVec&& o) noexcept {
    if (o.onHeap()) {
      data_ = o.data_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.data_ = o.inlineData();
      o.cap_ = N;
      o.size_ = 0;
    } else {
      for (std::size_t i = 0; i < o.size_; ++i) {
        ::new (data_ + i) T(std::move(o.data_[i]));
      }
      size_ = o.size_;
      o.destroyAll();
    }
  }

  InlineVec& operator=(const InlineVec& o) {
    if (this != &o) assignCopy(o.data_, o.size_);
    return *this;
  }

  InlineVec& operator=(InlineVec&& o) noexcept {
    if (this == &o) return *this;
    destroyAll();
    if (o.onHeap()) {
      if (onHeap()) ::operator delete(data_);
      data_ = o.data_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.data_ = o.inlineData();
      o.cap_ = N;
      o.size_ = 0;
    } else {
      for (std::size_t i = 0; i < o.size_; ++i) {
        ::new (data_ + i) T(std::move(o.data_[i]));
      }
      size_ = o.size_;
      o.destroyAll();
    }
    return *this;
  }

  ~InlineVec() {
    destroyAll();
    if (onHeap()) ::operator delete(data_);
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cap_; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T* data() { return data_; }
  const T* data() const { return data_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void clear() { destroyAll(); }

  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  void push_back(const T& v) {
    if (size_ == cap_) {
      // `v` may alias an element (v = vec[i]); growth frees the old
      // buffer, so copy it aside first in that case.
      if (&v >= data_ && &v < data_ + size_) {
        T aside(v);
        grow(cap_ * 2);
        ::new (data_ + size_) T(std::move(aside));
        ++size_;
        return;
      }
      grow(cap_ * 2);
    }
    ::new (data_ + size_) T(v);
    ++size_;
  }

  // Unlike push_back(const T&), the rvalue overload does not support
  // aliasing an element of this vector across a growth.
  void push_back(T&& v) {
    if (size_ == cap_) grow(cap_ * 2);
    ::new (data_ + size_) T(std::move(v));
    ++size_;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow(cap_ * 2);
    T* slot = ::new (data_ + size_) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() { data_[--size_].~T(); }

  /// Shrinks or value-initializes up to `n` elements.
  void resize(std::size_t n) {
    if (n < size_) {
      while (size_ > n) pop_back();
      return;
    }
    reserve(n);
    while (size_ < n) ::new (data_ + size_++) T();
  }

  bool operator==(const InlineVec& o) const {
    return size_ == o.size_ && std::equal(begin(), end(), o.begin());
  }
  bool operator!=(const InlineVec& o) const { return !(*this == o); }

 private:
  T* inlineData() { return reinterpret_cast<T*>(inline_); }
  bool onHeap() const {
    return data_ != reinterpret_cast<const T*>(inline_);
  }

  void destroyAll() {
    while (size_ > 0) data_[--size_].~T();
  }

  void assignCopy(const T* src, std::size_t n) {
    destroyAll();
    reserve(n);
    for (std::size_t i = 0; i < n; ++i) ::new (data_ + i) T(src[i]);
    size_ = n;
  }

  void grow(std::size_t n) {
    const std::size_t cap = std::max<std::size_t>(n, 2 * N);
    T* p = static_cast<T*>(::operator new(cap * sizeof(T)));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (p + i) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (onHeap()) ::operator delete(data_);
    data_ = p;
    cap_ = cap;
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* data_ = inlineData();
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace tpdf::support
