// Overflow-checked 64-bit integer arithmetic.
//
// Balance equations multiply rates by repetition counts; with parametric
// rates instantiated at large values (beta = 100, N = 1024) intermediate
// products reach ~1e8 and a buggy caller could push them past 2^63.  All
// exact arithmetic in the analyses goes through these helpers so that an
// overflow raises OverflowError instead of silently wrapping.
#pragma once

#include <cstdint>
#include <string>

#include "support/error.hpp"

namespace tpdf::support {

inline std::int64_t checkedAdd(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    throw OverflowError("integer overflow in " + std::to_string(a) + " + " +
                        std::to_string(b));
  }
  return out;
}

inline std::int64_t checkedSub(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_sub_overflow(a, b, &out)) {
    throw OverflowError("integer overflow in " + std::to_string(a) + " - " +
                        std::to_string(b));
  }
  return out;
}

inline std::int64_t checkedMul(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    throw OverflowError("integer overflow in " + std::to_string(a) + " * " +
                        std::to_string(b));
  }
  return out;
}

inline std::int64_t checkedNeg(std::int64_t a) { return checkedSub(0, a); }

/// Greatest common divisor of |a| and |b|; gcd(0, 0) == 0.
std::int64_t gcd64(std::int64_t a, std::int64_t b);

/// Least common multiple of |a| and |b|; throws OverflowError if it does
/// not fit in 64 bits.  lcm(0, x) == 0.
std::int64_t lcm64(std::int64_t a, std::int64_t b);

inline std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  if (a < 0) a = checkedNeg(a);
  if (b < 0) b = checkedNeg(b);
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

inline std::int64_t lcm64(std::int64_t a, std::int64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a < 0) a = checkedNeg(a);
  if (b < 0) b = checkedNeg(b);
  const std::int64_t g = gcd64(a, b);
  return checkedMul(a / g, b);
}

}  // namespace tpdf::support
