// Monotonic bump allocation for graph-scale payloads.
//
// A million-actor Graph owns several million small, immutable byte
// payloads: actor/port/channel names, the interned string pool behind
// them, and the frozen CSR blocks.  Allocating each through the global
// heap costs a malloc header plus pointer chasing per node; an Arena
// hands out pointers from large monotonic chunks instead, so a payload
// costs a bump and everything allocated stays put until the arena dies.
//
// Chunks are never reallocated or freed individually (monotonic), which
// is the property the Graph name pool relies on: a std::string_view into
// an arena chunk stays valid across any amount of later growth.  Memory
// is returned only by destroying (or moving from) the whole arena —
// exactly the lifetime of the Graph that owns it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <string_view>
#include <type_traits>
#include <unordered_set>
#include <vector>

namespace tpdf::support {

/// Bump allocator over monotonically growing chunks.  Not synchronized;
/// movable, not copyable (handed-out pointers stay valid across moves).
class Arena {
 public:
  explicit Arena(std::size_t firstChunkBytes = kDefaultFirstChunk)
      : nextChunkBytes_(firstChunkBytes == 0 ? kDefaultFirstChunk
                                             : firstChunkBytes) {}

  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bytes handed out so far (excludes per-chunk slack).
  std::size_t bytesUsed() const { return used_; }
  /// Bytes reserved from the system across all chunks.
  std::size_t bytesReserved() const { return reserved_; }
  std::size_t chunkCount() const { return chunks_.size(); }

  /// Raw allocation; `align` must be a power of two.
  void* allocate(std::size_t size, std::size_t align) {
    std::uintptr_t p = reinterpret_cast<std::uintptr_t>(cur_);
    const std::uintptr_t aligned = (p + (align - 1)) & ~(align - 1);
    const std::size_t need = size + static_cast<std::size_t>(aligned - p);
    if (need > static_cast<std::size_t>(end_ - cur_)) {
      grow(size + align);
      return allocate(size, align);
    }
    cur_ = reinterpret_cast<std::byte*>(aligned) + size;
    used_ += need;
    return reinterpret_cast<void*>(aligned);
  }

  /// Typed array allocation (uninitialized for trivial T).
  template <typename T>
  T* allocateArray(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is never destructed element-wise");
    if (n == 0) return nullptr;
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Copies `s` into the arena; the returned view is stable for the
  /// arena's lifetime.
  std::string_view copyString(std::string_view s) {
    if (s.empty()) return {};
    char* p = allocateArray<char>(s.size());
    std::memcpy(p, s.data(), s.size());
    return {p, s.size()};
  }

  /// Invalidates everything allocated so far and makes the space
  /// available again, retaining the largest chunk so a rebuild of the
  /// same data does not go back through the system allocator.  Used by
  /// storage that is regenerated wholesale (the Graph's frozen CSR
  /// blocks); NOT usable under the interned-name pool, whose views must
  /// stay valid for the owner's whole lifetime.
  void clear() {
    std::size_t largest = 0;
    std::size_t largestBytes = 0;
    for (std::size_t i = 0; i < chunks_.size(); ++i) {
      if (chunkBytes_[i] >= largestBytes) {
        largestBytes = chunkBytes_[i];
        largest = i;
      }
    }
    if (!chunks_.empty() && largest != 0) {
      std::swap(chunks_[0], chunks_[largest]);
      std::swap(chunkBytes_[0], chunkBytes_[largest]);
    }
    chunks_.resize(chunks_.empty() ? 0 : 1);
    chunkBytes_.resize(chunks_.size());
    used_ = 0;
    if (chunks_.empty()) {
      cur_ = end_ = nullptr;
      reserved_ = 0;
    } else {
      cur_ = chunks_[0].get();
      end_ = cur_ + chunkBytes_[0];
      reserved_ = chunkBytes_[0];
    }
  }

 private:
  static constexpr std::size_t kDefaultFirstChunk = 4096;
  static constexpr std::size_t kMaxChunk = std::size_t{1} << 20;  // 1 MiB

  void grow(std::size_t atLeast) {
    std::size_t bytes = nextChunkBytes_;
    if (bytes < atLeast) bytes = atLeast;
    chunks_.push_back(std::make_unique<std::byte[]>(bytes));
    chunkBytes_.push_back(bytes);
    cur_ = chunks_.back().get();
    end_ = cur_ + bytes;
    reserved_ += bytes;
    if (nextChunkBytes_ < kMaxChunk) nextChunkBytes_ *= 2;
  }

  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::vector<std::size_t> chunkBytes_;
  std::byte* cur_ = nullptr;
  std::byte* end_ = nullptr;
  std::size_t used_ = 0;
  std::size_t reserved_ = 0;
  std::size_t nextChunkBytes_;
};

/// Deduplicating string pool on an Arena.  intern() returns a stable
/// std::string_view; equal strings share one copy (port names like "i"
/// and "o" repeat once per actor in generated graphs, so deduplication
/// is the difference between O(distinct) and O(total) pool bytes).
class StringInterner {
 public:
  StringInterner() = default;

  StringInterner(StringInterner&&) noexcept = default;
  StringInterner& operator=(StringInterner&&) noexcept = default;
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  std::string_view intern(std::string_view s) {
    const auto it = index_.find(s);
    if (it != index_.end()) return *it;
    const std::string_view stored = arena_.copyString(s);
    index_.insert(stored);
    return stored;
  }

  bool contains(std::string_view s) const { return index_.count(s) != 0; }
  std::size_t size() const { return index_.size(); }
  std::size_t bytesUsed() const { return arena_.bytesUsed(); }

 private:
  Arena arena_;
  // Keys view into arena chunks, which never move: safe to index.
  std::unordered_set<std::string_view> index_;
};

}  // namespace tpdf::support
