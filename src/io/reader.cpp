// Recursive-descent reader for the .tpdf format (see format.hpp).
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "io/format.hpp"
#include "support/error.hpp"

namespace tpdf::io {

using graph::Graph;
using graph::PortKind;
using graph::RateSeq;

namespace {

struct Lexer {
  const std::string& text;
  std::size_t pos = 0;
  int line = 1;
  int column = 1;

  explicit Lexer(const std::string& t) : text(t) {}

  [[noreturn]] void fail(const std::string& message) const {
    throw support::ParseError(message, line, column);
  }

  void advance() {
    if (text[pos] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    ++pos;
  }

  void skipSpaceAndComments() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '#') {
        while (pos < text.size() && text[pos] != '\n') advance();
      } else {
        break;
      }
    }
  }

  bool atEnd() {
    skipSpaceAndComments();
    return pos >= text.size();
  }

  char peek() {
    skipSpaceAndComments();
    return pos < text.size() ? text[pos] : '\0';
  }

  bool tryConsume(char c) {
    if (peek() != c) return false;
    advance();
    return true;
  }

  void expect(char c) {
    if (!tryConsume(c)) {
      fail(std::string("expected '") + c + "'");
    }
  }

  std::string identifier() {
    skipSpaceAndComments();
    if (pos >= text.size() ||
        (!std::isalpha(static_cast<unsigned char>(text[pos])) &&
         text[pos] != '_')) {
      fail("expected identifier");
    }
    std::string out;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '_')) {
      out += text[pos];
      advance();
    }
    return out;
  }

  bool tryKeyword(const std::string& kw) {
    skipSpaceAndComments();
    const std::size_t savedPos = pos;
    const int savedLine = line;
    const int savedColumn = column;
    std::size_t i = 0;
    while (i < kw.size() && pos < text.size() && text[pos] == kw[i]) {
      advance();
      ++i;
    }
    const bool boundary =
        pos >= text.size() ||
        (!std::isalnum(static_cast<unsigned char>(text[pos])) &&
         text[pos] != '_');
    if (i == kw.size() && boundary) return true;
    pos = savedPos;
    line = savedLine;
    column = savedColumn;
    return false;
  }

  void expectKeyword(const std::string& kw) {
    if (!tryKeyword(kw)) fail("expected keyword '" + kw + "'");
  }

  std::int64_t integer() {
    skipSpaceAndComments();
    bool negative = false;
    if (pos < text.size() && text[pos] == '-') {
      negative = true;
      advance();
    }
    if (pos >= text.size() ||
        !std::isdigit(static_cast<unsigned char>(text[pos]))) {
      fail("expected integer");
    }
    std::int64_t value = 0;
    constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      const std::int64_t digit = text[pos] - '0';
      if (value > (kMax - digit) / 10) fail("integer literal overflows");
      value = value * 10 + digit;
      advance();
    }
    return negative ? -value : value;
  }

  double real() {
    skipSpaceAndComments();
    std::string buf;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == '-' || text[pos] == 'e' ||
            text[pos] == 'E' || text[pos] == '+')) {
      buf += text[pos];
      advance();
    }
    if (buf.empty()) fail("expected number");
    try {
      return std::stod(buf);
    } catch (const std::exception&) {
      fail("malformed number '" + buf + "'");
    }
  }

  /// Reads a rate specification: either a bracketed list "[...]" or a
  /// bare expression up to the next ';' / keyword boundary.
  std::string rateSpec() {
    skipSpaceAndComments();
    std::string out;
    if (peek() == '[') {
      // Brackets nest one level in well-formed specs ("[2 p [1 0]^3]" is
      // not a thing; nesting comes only from expressions).  Cap the
      // depth so adversarially deep "[[[[…" input fails here with a
      // position instead of feeding an enormous spec to RateSeq::parse.
      constexpr int kMaxBracketDepth = 16;
      int depth = 0;
      do {
        if (pos >= text.size()) fail("unterminated rate list");
        const char c = text[pos];
        if (c == '[' && ++depth > kMaxBracketDepth) {
          fail("rate list nested too deeply (limit " +
               std::to_string(kMaxBracketDepth) + ")");
        }
        if (c == ']') --depth;
        out += c;
        advance();
      } while (depth > 0);
      return out;
    }
    while (pos < text.size() && text[pos] != ';' && text[pos] != '\n') {
      // A bare expression ends where a trailing "priority" clause starts.
      if (std::isspace(static_cast<unsigned char>(text[pos])) &&
          text.compare(pos + 1, 8, "priority") == 0) {
        break;
      }
      out += text[pos];
      advance();
    }
    if (out.empty()) fail("expected rate specification");
    return out;
  }
};

void parsePortClause(Lexer& lex, Graph& g, graph::ActorId actor,
                     PortKind kind) {
  const std::string name = lex.identifier();
  lex.expectKeyword("rates");
  // Record where the rate specification starts: RateSeq::parse reports
  // positions relative to the spec text, and diagnostics must point at
  // the real location in the .tpdf file, not "line 1" of the expression.
  lex.skipSpaceAndComments();
  const int specLine = lex.line;
  const int specColumn = lex.column;
  const std::string rates = lex.rateSpec();
  graph::RateSeq seq;
  try {
    seq = RateSeq::parse(rates);
  } catch (const support::ParseError& e) {
    const int line = specLine + e.line() - 1;
    const int column = e.line() == 1 ? specColumn + e.column() - 1
                                     : e.column();
    throw support::ParseError(e.message(), line, column);
  }
  int priority = 0;
  if (lex.tryKeyword("priority")) {
    priority = static_cast<int>(lex.integer());
  }
  lex.expect(';');
  g.addPort(actor, name, kind, std::move(seq), priority);
}

void parseActorBody(Lexer& lex, Graph& g, graph::ActorId actor) {
  lex.expect('{');
  while (!lex.tryConsume('}')) {
    if (lex.tryKeyword("in")) {
      parsePortClause(lex, g, actor, PortKind::DataIn);
    } else if (lex.tryKeyword("out")) {
      parsePortClause(lex, g, actor, PortKind::DataOut);
    } else if (lex.tryKeyword("ctl_in")) {
      parsePortClause(lex, g, actor, PortKind::ControlIn);
    } else if (lex.tryKeyword("ctl_out")) {
      parsePortClause(lex, g, actor, PortKind::ControlOut);
    } else if (lex.tryKeyword("exec")) {
      std::vector<double> times;
      while (lex.peek() != ';') times.push_back(lex.real());
      lex.expect(';');
      g.setExecTime(actor, std::move(times));
    } else {
      lex.fail("expected port declaration, 'exec' or '}'");
    }
  }
}

}  // namespace

Graph readGraph(const std::string& text) {
  Lexer lex(text);
  lex.expectKeyword("graph");
  Graph g(lex.identifier());
  lex.expect('{');

  while (!lex.tryConsume('}')) {
    if (lex.tryKeyword("param")) {
      g.addParam(lex.identifier());
      lex.expect(';');
    } else if (lex.tryKeyword("kernel")) {
      const graph::ActorId a =
          g.addActor(lex.identifier(), graph::ActorKind::Kernel);
      parseActorBody(lex, g, a);
    } else if (lex.tryKeyword("control")) {
      const graph::ActorId a =
          g.addActor(lex.identifier(), graph::ActorKind::Control);
      parseActorBody(lex, g, a);
    } else if (lex.tryKeyword("channel")) {
      const std::string name = lex.identifier();
      lex.expectKeyword("from");
      const std::string fromActor = lex.identifier();
      lex.expect('.');
      const std::string fromPort = lex.identifier();
      lex.expectKeyword("to");
      const std::string toActor = lex.identifier();
      lex.expect('.');
      const std::string toPort = lex.identifier();
      std::int64_t initial = 0;
      if (lex.tryKeyword("init")) initial = lex.integer();
      lex.expect(';');

      const auto src = g.findPort(fromActor + "." + fromPort);
      const auto dst = g.findPort(toActor + "." + toPort);
      if (!src) lex.fail("unknown port '" + fromActor + "." + fromPort + "'");
      if (!dst) lex.fail("unknown port '" + toActor + "." + toPort + "'");
      g.addChannel(name, *src, *dst, initial);
    } else {
      lex.fail("expected 'param', 'kernel', 'control', 'channel' or '}'");
    }
  }
  if (!lex.atEnd()) lex.fail("unexpected trailing input");

  g.validate();
  return g;
}

Graph readGraphFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw support::Error("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return readGraph(buffer.str());
}

}  // namespace tpdf::io
