// Recursive-descent reader for the .tpdf format (see format.hpp).
//
// The lexer tokenizes through a Source: either a whole in-memory buffer
// (readGraph(string)) or a bounded sliding window over an std::istream
// (readGraph(istream) / readGraphFile) that never materializes the
// document.  The grammar needs at most ~9 characters of lookahead (the
// "priority" clause boundary inside a bare rate expression), so the
// window can be tiny; both modes run the identical lexer code and report
// identical line/column diagnostics.
#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <limits>
#include <utility>

#include "io/format.hpp"
#include "support/error.hpp"

namespace tpdf::io {

using graph::Graph;
using graph::PortKind;
using graph::RateSeq;

namespace {

/// Character supply with bounded lookahead.  Buffer mode serves a
/// string_view in place; stream mode keeps a compacted window of unread
/// characters and refills it from the stream on demand.
class Source {
 public:
  explicit Source(std::string_view text)
      : data_(text.data()), size_(text.size()) {}

  Source(std::istream& in, std::size_t chunkBytes)
      : in_(&in), chunk_(std::max<std::size_t>(chunkBytes, 16)) {}

  /// Makes at least `k` unread characters addressable (or hits EOF);
  /// true when at(0..k-1) are valid.
  bool ensure(std::size_t k) {
    if (cur_ + k <= size_) return true;
    if (in_ == nullptr || eof_) return false;
    refill(k);
    return cur_ + k <= size_;
  }

  /// The i-th unread character; requires ensure(i + 1).
  char at(std::size_t i) const { return data_[cur_ + i]; }

  void consume() { ++cur_; }

 private:
  void refill(std::size_t need) {
    // Compact: drop everything already consumed (at most lookahead-many
    // characters remain, so this is a handful of bytes per refill).
    buf_.erase(0, cur_);
    cur_ = 0;
    while (buf_.size() < need && !eof_) {
      const std::size_t old = buf_.size();
      const std::size_t want = std::max(chunk_, need - old);
      buf_.resize(old + want);
      in_->read(buf_.data() + old, static_cast<std::streamsize>(want));
      const std::size_t got = static_cast<std::size_t>(in_->gcount());
      buf_.resize(old + got);
      if (in_->bad()) {
        throw support::Error("I/O error while reading .tpdf input");
      }
      if (got < want) eof_ = true;
    }
    data_ = buf_.data();
    size_ = buf_.size();
  }

  const char* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cur_ = 0;

  std::istream* in_ = nullptr;
  std::size_t chunk_ = 0;
  bool eof_ = false;
  std::string buf_;
};

struct Lexer {
  Source& src;
  int line = 1;
  int column = 1;

  explicit Lexer(Source& s) : src(s) {}

  [[noreturn]] void fail(const std::string& message) const {
    throw support::ParseError(message, line, column);
  }

  bool eof() { return !src.ensure(1); }
  char cur() { return src.at(0); }

  void advance() {
    if (src.at(0) == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    src.consume();
  }

  void skipSpaceAndComments() {
    while (!eof()) {
      const char c = cur();
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '#') {
        while (!eof() && cur() != '\n') advance();
      } else {
        break;
      }
    }
  }

  bool atEnd() {
    skipSpaceAndComments();
    return eof();
  }

  char peek() {
    skipSpaceAndComments();
    return eof() ? '\0' : cur();
  }

  bool tryConsume(char c) {
    if (peek() != c) return false;
    advance();
    return true;
  }

  void expect(char c) {
    if (!tryConsume(c)) {
      fail(std::string("expected '") + c + "'");
    }
  }

  std::string identifier() {
    skipSpaceAndComments();
    if (eof() || (!std::isalpha(static_cast<unsigned char>(cur())) &&
                  cur() != '_')) {
      fail("expected identifier");
    }
    std::string out;
    while (!eof() && (std::isalnum(static_cast<unsigned char>(cur())) ||
                      cur() == '_')) {
      out += cur();
      advance();
    }
    return out;
  }

  /// Matches `kw` followed by a non-identifier boundary, consuming it on
  /// success.  Pure lookahead: nothing is consumed on a miss, so no
  /// position rollback is needed (the property that lets the streaming
  /// window stay tiny).
  bool tryKeyword(const std::string& kw) {
    skipSpaceAndComments();
    src.ensure(kw.size() + 1);  // best effort; EOF may cut it short
    for (std::size_t i = 0; i < kw.size(); ++i) {
      if (!src.ensure(i + 1) || src.at(i) != kw[i]) return false;
    }
    if (src.ensure(kw.size() + 1)) {
      const char next = src.at(kw.size());
      if (std::isalnum(static_cast<unsigned char>(next)) || next == '_') {
        return false;
      }
    }
    for (std::size_t i = 0; i < kw.size(); ++i) advance();
    return true;
  }

  void expectKeyword(const std::string& kw) {
    if (!tryKeyword(kw)) fail("expected keyword '" + kw + "'");
  }

  std::int64_t integer() {
    skipSpaceAndComments();
    bool negative = false;
    if (!eof() && cur() == '-') {
      negative = true;
      advance();
    }
    if (eof() || !std::isdigit(static_cast<unsigned char>(cur()))) {
      fail("expected integer");
    }
    std::int64_t value = 0;
    constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
    while (!eof() && std::isdigit(static_cast<unsigned char>(cur()))) {
      const std::int64_t digit = cur() - '0';
      if (value > (kMax - digit) / 10) fail("integer literal overflows");
      value = value * 10 + digit;
      advance();
    }
    return negative ? -value : value;
  }

  double real() {
    skipSpaceAndComments();
    std::string buf;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(cur())) ||
                      cur() == '.' || cur() == '-' || cur() == 'e' ||
                      cur() == 'E' || cur() == '+')) {
      buf += cur();
      advance();
    }
    if (buf.empty()) fail("expected number");
    try {
      return std::stod(buf);
    } catch (const std::exception&) {
      fail("malformed number '" + buf + "'");
    }
  }

  /// Reads a rate specification: either a bracketed list "[...]" or a
  /// bare expression up to the next ';' / keyword boundary.
  std::string rateSpec() {
    skipSpaceAndComments();
    std::string out;
    if (peek() == '[') {
      // Brackets nest one level in well-formed specs ("[2 p [1 0]^3]" is
      // not a thing; nesting comes only from expressions).  Cap the
      // depth so adversarially deep "[[[[…" input fails here with a
      // position instead of feeding an enormous spec to RateSeq::parse.
      constexpr int kMaxBracketDepth = 16;
      int depth = 0;
      do {
        if (eof()) fail("unterminated rate list");
        const char c = cur();
        if (c == '[' && ++depth > kMaxBracketDepth) {
          fail("rate list nested too deeply (limit " +
               std::to_string(kMaxBracketDepth) + ")");
        }
        if (c == ']') --depth;
        out += c;
        advance();
      } while (depth > 0);
      return out;
    }
    static constexpr std::string_view kPriority = "priority";
    while (!eof() && cur() != ';' && cur() != '\n') {
      // A bare expression ends where a trailing "priority" clause starts.
      if (std::isspace(static_cast<unsigned char>(cur())) &&
          src.ensure(kPriority.size() + 1)) {
        bool isPriority = true;
        for (std::size_t i = 0; i < kPriority.size(); ++i) {
          if (src.at(i + 1) != kPriority[i]) {
            isPriority = false;
            break;
          }
        }
        if (isPriority) break;
      }
      out += cur();
      advance();
    }
    if (out.empty()) fail("expected rate specification");
    return out;
  }
};

void parsePortClause(Lexer& lex, Graph& g, graph::ActorId actor,
                     PortKind kind) {
  const std::string name = lex.identifier();
  lex.expectKeyword("rates");
  // Record where the rate specification starts: RateSeq::parse reports
  // positions relative to the spec text, and diagnostics must point at
  // the real location in the .tpdf file, not "line 1" of the expression.
  lex.skipSpaceAndComments();
  const int specLine = lex.line;
  const int specColumn = lex.column;
  const std::string rates = lex.rateSpec();
  graph::RateSeq seq;
  try {
    seq = RateSeq::parse(rates);
  } catch (const support::ParseError& e) {
    const int line = specLine + e.line() - 1;
    const int column = e.line() == 1 ? specColumn + e.column() - 1
                                     : e.column();
    throw support::ParseError(e.message(), line, column);
  }
  int priority = 0;
  if (lex.tryKeyword("priority")) {
    priority = static_cast<int>(lex.integer());
  }
  lex.expect(';');
  g.addPort(actor, name, kind, std::move(seq), priority);
}

void parseActorBody(Lexer& lex, Graph& g, graph::ActorId actor) {
  lex.expect('{');
  while (!lex.tryConsume('}')) {
    if (lex.tryKeyword("in")) {
      parsePortClause(lex, g, actor, PortKind::DataIn);
    } else if (lex.tryKeyword("out")) {
      parsePortClause(lex, g, actor, PortKind::DataOut);
    } else if (lex.tryKeyword("ctl_in")) {
      parsePortClause(lex, g, actor, PortKind::ControlIn);
    } else if (lex.tryKeyword("ctl_out")) {
      parsePortClause(lex, g, actor, PortKind::ControlOut);
    } else if (lex.tryKeyword("exec")) {
      std::vector<double> times;
      while (lex.peek() != ';') times.push_back(lex.real());
      lex.expect(';');
      g.setExecTime(actor, times);
    } else {
      lex.fail("expected port declaration, 'exec' or '}'");
    }
  }
}

Graph parseDocument(Lexer& lex) {
  lex.expectKeyword("graph");
  Graph g(lex.identifier());
  lex.expect('{');

  while (!lex.tryConsume('}')) {
    if (lex.tryKeyword("param")) {
      g.addParam(lex.identifier());
      lex.expect(';');
    } else if (lex.tryKeyword("kernel")) {
      const graph::ActorId a =
          g.addActor(lex.identifier(), graph::ActorKind::Kernel);
      parseActorBody(lex, g, a);
    } else if (lex.tryKeyword("control")) {
      const graph::ActorId a =
          g.addActor(lex.identifier(), graph::ActorKind::Control);
      parseActorBody(lex, g, a);
    } else if (lex.tryKeyword("channel")) {
      const std::string name = lex.identifier();
      lex.expectKeyword("from");
      const std::string fromActor = lex.identifier();
      lex.expect('.');
      const std::string fromPort = lex.identifier();
      lex.expectKeyword("to");
      const std::string toActor = lex.identifier();
      lex.expect('.');
      const std::string toPort = lex.identifier();
      std::int64_t initial = 0;
      if (lex.tryKeyword("init")) initial = lex.integer();
      lex.expect(';');

      const auto src = g.findPort(fromActor + "." + fromPort);
      const auto dst = g.findPort(toActor + "." + toPort);
      if (!src) lex.fail("unknown port '" + fromActor + "." + fromPort + "'");
      if (!dst) lex.fail("unknown port '" + toActor + "." + toPort + "'");
      g.addChannel(name, *src, *dst, initial);
    } else {
      lex.fail("expected 'param', 'kernel', 'control', 'channel' or '}'");
    }
  }
  if (!lex.atEnd()) lex.fail("unexpected trailing input");

  g.validate();
  return g;
}

}  // namespace

Graph readGraph(const std::string& text) {
  Source src(std::string_view{text});
  Lexer lex(src);
  return parseDocument(lex);
}

Graph readGraph(std::istream& in, std::size_t bufferBytes) {
  Source src(in, bufferBytes);
  Lexer lex(src);
  return parseDocument(lex);
}

Graph readGraphFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw support::Error("cannot open '" + path + "' for reading");
  }
  return readGraph(in);
}

}  // namespace tpdf::io
