// Writer for the .tpdf format (see format.hpp).
#include <fstream>
#include <sstream>

#include "io/format.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace tpdf::io {

using graph::Graph;
using graph::PortKind;

namespace {

std::string portKeyword(PortKind k) {
  switch (k) {
    case PortKind::DataIn:
      return "in";
    case PortKind::DataOut:
      return "out";
    case PortKind::ControlIn:
      return "ctl_in";
    case PortKind::ControlOut:
      return "ctl_out";
  }
  return "?";
}

}  // namespace

std::string writeGraph(const Graph& g) {
  std::ostringstream os;
  os << "graph " << g.name() << " {\n";

  for (const std::string& p : g.params()) {
    os << "  param " << p << ";\n";
  }
  if (!g.params().empty()) os << "\n";

  for (const graph::Actor& a : g.actors()) {
    os << "  " << (a.kind == graph::ActorKind::Kernel ? "kernel" : "control")
       << " " << a.name << " {\n";
    for (graph::PortId pid : a.ports) {
      const graph::Port& p = g.port(pid);
      os << "    " << portKeyword(p.kind) << " " << p.name << " rates "
         << p.rates.toString();
      if (p.priority != 0) os << " priority " << p.priority;
      os << ";\n";
    }
    const bool defaultExec = a.execTime.size() == 1 && a.execTime[0] == 1.0;
    if (!defaultExec) {
      os << "    exec";
      for (double t : a.execTime) os << " " << support::formatDouble(t);
      os << ";\n";
    }
    os << "  }\n";
  }

  if (g.channelCount() > 0) os << "\n";
  for (const graph::Channel& c : g.channels()) {
    const graph::Port& src = g.port(c.src);
    const graph::Port& dst = g.port(c.dst);
    os << "  channel " << c.name << " from "
       << g.actor(src.actor).name << "." << src.name << " to "
       << g.actor(dst.actor).name << "." << dst.name;
    if (c.initialTokens > 0) os << " init " << c.initialTokens;
    os << ";\n";
  }

  os << "}\n";
  return os.str();
}

void writeGraphFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw support::Error("cannot open '" + path + "' for writing");
  }
  out << writeGraph(g);
}

support::json::Value toJson(const Graph& g) {
  auto doc = support::json::Value::object();
  doc.set("name", g.name());
  auto params = support::json::Value::array();
  for (const std::string& p : g.params()) params.push(p);
  doc.set("params", std::move(params));

  auto actors = support::json::Value::array();
  for (const graph::Actor& a : g.actors()) {
    auto actor = support::json::Value::object();
    actor.set("name", a.name);
    actor.set("kind",
              a.kind == graph::ActorKind::Kernel ? "kernel" : "control");
    auto ports = support::json::Value::array();
    for (const graph::PortId pid : a.ports) {
      const graph::Port& p = g.port(pid);
      auto port = support::json::Value::object();
      port.set("name", p.name);
      port.set("kind", portKeyword(p.kind));
      port.set("rates", p.rates.toString());
      if (p.priority != 0) port.set("priority", p.priority);
      ports.push(std::move(port));
    }
    actor.set("ports", std::move(ports));
    auto exec = support::json::Value::array();
    for (const double t : a.execTime) exec.push(t);
    actor.set("execTime", std::move(exec));
    actors.push(std::move(actor));
  }
  doc.set("actors", std::move(actors));

  auto channels = support::json::Value::array();
  for (const graph::Channel& c : g.channels()) {
    const graph::Port& src = g.port(c.src);
    const graph::Port& dst = g.port(c.dst);
    auto channel = support::json::Value::object();
    channel.set("name", c.name);
    channel.set("from", g.actor(src.actor).name + "." + src.name);
    channel.set("to", g.actor(dst.actor).name + "." + dst.name);
    if (c.initialTokens != 0) channel.set("initialTokens", c.initialTokens);
    channels.push(std::move(channel));
  }
  doc.set("channels", std::move(channels));
  return doc;
}

}  // namespace tpdf::io
