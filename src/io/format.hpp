// The .tpdf textual interchange format.
//
// A plain-text equivalent of SDF3's XML graph files, covering the full
// structural model (parameters, kernels, control actors, ports with
// cyclo-static symbolic rates and priorities, per-phase execution times,
// channels with initial tokens).  Example:
//
//   graph fig2 {
//     param p;
//
//     kernel A { out o rates [p]; }
//     kernel B {
//       in i rates [1];
//       out oC rates [1];
//       exec 1 2;
//     }
//     control C { in i rates [2]; ctl_out o rates [2]; }
//     kernel F {
//       in iD rates [0,2] priority 1;
//       ctl_in c rates [1,1];
//     }
//
//     channel e1 from A.o to B.i;
//     channel e2 from B.oC to C.i init 2;
//   }
//
// writeGraph() and readGraph() round-trip losslessly.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"
#include "support/json.hpp"

namespace tpdf::io {

/// Parses a .tpdf document.  Throws support::ParseError with line/column
/// on syntax errors and support::ModelError when the parsed graph fails
/// validation.
graph::Graph readGraph(const std::string& text);

/// Streaming parse: tokenizes incrementally from `in` through a bounded
/// buffer window (the whole document is never materialized), with the
/// same grammar and the same ParseError line/column positions as the
/// string overload.  `bufferBytes` sets the refill chunk size; the
/// default suits files, tests shrink it to stress window refills.
graph::Graph readGraph(std::istream& in, std::size_t bufferBytes = 65536);

/// Opens and streams `path` through readGraph(std::istream&).
graph::Graph readGraphFile(const std::string& path);

/// Renders `g` in the .tpdf format.
std::string writeGraph(const graph::Graph& g);
void writeGraphFile(const graph::Graph& g, const std::string& path);

/// Structural JSON rendering of `g`: parameters, actors with their ports
/// (rates as the same strings the .tpdf format uses), channels with
/// endpoints and initial tokens.  The machine-readable sibling of
/// writeGraph(), emitted by `tpdfc echo --json`.
support::json::Value toJson(const graph::Graph& g);

}  // namespace tpdf::io
