#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <optional>
#include <queue>
#include <set>

#include "csdf/repetition.hpp"
#include "support/checked.hpp"
#include "support/error.hpp"

namespace tpdf::sim {

using graph::ActorId;
using graph::ActorKind;
using graph::ChannelId;
using graph::Graph;
using graph::PortId;
using graph::PortKind;

// ---- FiringContext ----------------------------------------------------

FiringContext::FiringContext(const Graph& g, ActorId actor,
                             std::int64_t firingIndex, int modeIndex,
                             double now, double duration)
    : graph_(&g),
      actor_(actor),
      firingIndex_(firingIndex),
      modeIndex_(modeIndex),
      now_(now),
      duration_(duration) {}

const std::vector<Token>& FiringContext::inputs(
    const std::string& port) const {
  static const std::vector<Token> kEmpty;
  const auto it = inputs_.find(port);
  return it == inputs_.end() ? kEmpty : it->second;
}

void FiringContext::emit(const std::string& port, Token token) {
  outputs_[port].push_back(std::move(token));
}

void FiringContext::setDuration(double duration) {
  if (duration < 0.0) {
    throw support::Error("negative firing duration");
  }
  duration_ = duration;
}

// ---- Simulator ----------------------------------------------------------

Simulator::Simulator(const core::TpdfGraph& model, symbolic::Environment env)
    : Simulator(model, std::move(env), nullptr) {}

Simulator::Simulator(const core::TpdfGraph& model, symbolic::Environment env,
                     const core::AnalysisContext* ctx)
    : model_(&model), env_(std::move(env)), ctx_(ctx) {
  if (ctx_ != nullptr && &ctx_->graph() != &model.graph()) {
    throw support::Error(
        "analysis context was built for a different graph than the "
        "simulated model");
  }
  model.validate();
}

void Simulator::setBehaviour(ActorId actor, Behaviour behaviour) {
  behaviours_[actor.value] = std::move(behaviour);
}

void Simulator::setBehaviour(const std::string& actorName,
                             Behaviour behaviour) {
  const auto id = model_->graph().findActor(actorName);
  if (!id) {
    throw support::Error("unknown actor '" + actorName + "'");
  }
  setBehaviour(*id, std::move(behaviour));
}

std::string SimResult::renderTrace(const graph::Graph& g) const {
  std::string out;
  for (const TraceEvent& e : trace) {
    char line[128];
    std::snprintf(line, sizeof(line), "[%.6g-%.6g] %s#%lld (mode %d)\n",
                  e.start, e.finish, g.actor(e.actor).name.str().c_str(),
                  static_cast<long long>(e.k), e.mode);
    out += line;
  }
  return out;
}

support::json::Value SimResult::toJson(const graph::Graph& g) const {
  auto doc = support::json::Value::object();
  doc.set("ok", ok);
  if (!diagnostic.empty()) doc.set("diagnostic", diagnostic);
  doc.set("endTime", endTime);
  doc.set("totalFirings", totalFirings);
  doc.set("returnedToInitialState", returnedToInitialState);
  auto actorArray = support::json::Value::array();
  for (std::size_t i = 0; i < firings.size(); ++i) {
    auto entry = support::json::Value::object();
    entry.set("actor", g.actors()[i].name);
    entry.set("firings", firings[i]);
    actorArray.push(std::move(entry));
  }
  doc.set("actors", std::move(actorArray));
  auto channelArray = support::json::Value::array();
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const ChannelStats& s = channels[i];
    auto entry = support::json::Value::object();
    entry.set("channel", g.channels()[i].name);
    entry.set("maxOccupancy", s.maxOccupancy);
    entry.set("produced", s.produced);
    entry.set("consumed", s.consumed);
    entry.set("discarded", s.discarded);
    channelArray.push(std::move(entry));
  }
  doc.set("channels", std::move(channelArray));
  if (!links.empty()) {
    auto linkArray = support::json::Value::array();
    for (const LinkStats& l : links) {
      auto entry = support::json::Value::object();
      entry.set("link", l.link);
      entry.set("transfers", l.transfers);
      entry.set("busyTime", l.busyTime);
      entry.set("utilization", endTime > 0.0 ? l.busyTime / endTime : 0.0);
      linkArray.push(std::move(entry));
    }
    doc.set("links", std::move(linkArray));
  }
  if (!trace.empty()) {
    auto traceArray = support::json::Value::array();
    for (const TraceEvent& e : trace) {
      auto entry = support::json::Value::object();
      entry.set("actor", g.actor(e.actor).name);
      entry.set("k", e.k);
      entry.set("mode", e.mode);
      entry.set("start", e.start);
      entry.set("finish", e.finish);
      traceArray.push(std::move(entry));
    }
    doc.set("trace", std::move(traceArray));
  }
  return doc;
}

namespace {

constexpr std::int64_t kUnlimited =
    std::numeric_limits<std::int64_t>::max();

struct RunState {
  std::vector<std::deque<Token>> queue;    // per channel
  std::vector<std::int64_t> discardDebt;   // per channel
  std::vector<ChannelStats> stats;

  void push(std::size_t c, Token t) {
    ++stats[c].produced;
    if (discardDebt[c] > 0) {
      --discardDebt[c];
      ++stats[c].discarded;
      return;
    }
    queue[c].push_back(std::move(t));
    stats[c].maxOccupancy = std::max(
        stats[c].maxOccupancy, static_cast<std::int64_t>(queue[c].size()));
  }

  Token pop(std::size_t c) {
    Token t = std::move(queue[c].front());
    queue[c].pop_front();
    ++stats[c].consumed;
    return t;
  }

  /// Registers `n` tokens of channel c as rejected; present tokens are
  /// dropped now, missing ones on arrival.
  void discard(std::size_t c, std::int64_t n) {
    while (n > 0 && !queue[c].empty()) {
      queue[c].pop_front();
      ++stats[c].discarded;
      --n;
    }
    discardDebt[c] += n;
  }
};

}  // namespace

SimResult Simulator::run(const SimOptions& options) {
  const Graph& g = model_->graph();
  SimResult result;
  result.firings.resize(g.actorCount(), 0);

  // Shared intermediates: the caller's context when one was provided,
  // otherwise a run-local one (same cost profile as the pre-context
  // implementation).
  std::optional<core::AnalysisContext> localCtx;
  const core::AnalysisContext& ctx =
      ctx_ != nullptr ? *ctx_ : localCtx.emplace(g);

  // Concrete repetition vector for the iteration limits.
  const csdf::RepetitionVector& rv = ctx.repetition();
  if (!rv.consistent) {
    result.diagnostic = "graph is not rate consistent: " + rv.diagnostic;
    return result;
  }

  bool hasClock = false;
  std::vector<ActorState> actors(g.actorCount());
  for (const graph::Actor& a : g.actors()) {
    ActorState& st = actors[a.id.index()];
    if (a.kind == ActorKind::Control &&
        model_->controlKind(a.id) == core::ControlKind::Clock) {
      hasClock = true;
      st.limit = kUnlimited;
      st.nextClockTick = *model_->clockPeriod(a.id);
    } else {
      st.limit = support::checkedMul(rv.qOf(a.id).evaluateInt(env_),
                                     options.iterations);
    }
  }
  if (hasClock && !std::isfinite(options.stopTime)) {
    result.diagnostic =
        "model contains clock actors: a finite stopTime is required";
    return result;
  }

  // ---- Interconnect state (fabric-routed runs only). --------------------
  const tpdf::platform::Topology* fabric = options.fabric;
  if (fabric != nullptr && options.actorPe.size() != g.actorCount()) {
    result.diagnostic = "fabric placement covers " +
                        std::to_string(options.actorPe.size()) +
                        " actors but the graph has " +
                        std::to_string(g.actorCount());
    return result;
  }
  // Earliest instant each link is free again; reservations serialize.
  std::vector<double> linkFree;
  if (fabric != nullptr) {
    linkFree.assign(fabric->links().size(), 0.0);
    result.links.resize(fabric->links().size());
    for (const tpdf::platform::Link& l : fabric->links()) {
      result.links[l.id].link = l.name;
    }
  }
  // In-flight transfers keyed by (arrival, sequence): tokens that left
  // their producer but have not reached the consumer's queue yet.
  std::uint64_t transferSeq = 0;
  std::map<std::pair<double, std::uint64_t>,
           std::pair<std::size_t, std::vector<Token>>>
      transfers;

  RunState state;
  state.queue.resize(g.channelCount());
  state.discardDebt.resize(g.channelCount(), 0);
  state.stats.resize(g.channelCount());
  for (const graph::Channel& c : g.channels()) {
    for (std::int64_t i = 0; i < c.initialTokens; ++i) {
      state.queue[c.id.index()].push_back(Token{});
    }
    state.stats[c.id.index()].maxOccupancy = c.initialTokens;
  }

  const std::vector<core::ModeSpec> defaultModes{
      core::ModeSpec{"default", core::Mode::WaitAll, {}, {}}};

  // Every port's rate sequence as integers over the actor's tau phases,
  // from the context's memoized tables; the per-firing lookup in the hot
  // loop is a plain array index instead of a RateSeq copy plus symbolic
  // evaluation (and with a shared context, the evaluation itself
  // happened at most once per valuation across analyze + simulate).
  const graph::EvaluatedRates& portRates = ctx.rates(env_);
  auto phaseRate = [&](PortId pid, std::int64_t firing) {
    return portRates.at(pid, firing);
  };

  // Channel -> consuming actor, for the adjacency-driven wakeup: a token
  // arrival can only change the startability of the channel's one
  // consumer, so that is the only actor worth re-examining.
  const graph::GraphView& view = ctx.view();

  // Actors to (re-)try starting at the current instant, in id order.
  std::set<std::size_t> wake;
  for (std::size_t i = 0; i < g.actorCount(); ++i) wake.insert(i);

  // Future events: firing completions and clock ticks, keyed by time.
  using Event = std::pair<double, std::size_t>;  // (time, actor)
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
      events;
  for (const graph::Actor& a : g.actors()) {
    if (a.kind == ActorKind::Control &&
        model_->controlKind(a.id) == core::ControlKind::Clock) {
      events.push({actors[a.id.index()].nextClockTick, a.id.index()});
    }
  }

  auto modeSpecOf = [&](const graph::Actor& a,
                        int modeIndex) -> const core::ModeSpec& {
    const auto& modes = model_->modes(a.id);
    if (modes.empty()) return defaultModes[0];
    return modes[static_cast<std::size_t>(modeIndex) % modes.size()];
  };

  // Decides whether actor `a` can start a firing now; fills `selected`
  // with the data-input ports to consume from.
  auto selectInputs = [&](const graph::Actor& a, const ActorState& st,
                          int modeIndex,
                          std::vector<PortId>& selected) -> bool {
    const core::ModeSpec& spec = modeSpecOf(a, modeIndex);

    std::vector<PortId> candidates;
    for (PortId pid : a.ports) {
      const graph::Port& p = g.port(pid);
      if (p.kind != PortKind::DataIn) continue;
      if (a.kind == ActorKind::Kernel && spec.mode != core::Mode::WaitAll &&
          !spec.activeInputs.empty()) {
        const bool active =
            std::find(spec.activeInputs.begin(), spec.activeInputs.end(),
                      pid) != spec.activeInputs.end();
        if (!active) continue;
      }
      candidates.push_back(pid);
    }

    if (a.kind == ActorKind::Kernel &&
        spec.mode == core::Mode::HighestPriority) {
      // Fire as soon as one candidate with a positive rate is satisfied;
      // take the satisfied candidate with the highest priority.
      PortId best;
      int bestPriority = std::numeric_limits<int>::min();
      bool anyPositive = false;
      for (PortId pid : candidates) {
        const std::int64_t need = phaseRate(pid, st.fired);
        if (need == 0) continue;
        anyPositive = true;
        const graph::Port& p = g.port(pid);
        if (static_cast<std::int64_t>(state.queue[p.channel.index()].size()) >=
                need &&
            p.priority > bestPriority) {
          best = pid;
          bestPriority = p.priority;
        }
      }
      if (!anyPositive) return true;  // nothing to consume this phase
      if (!best.valid()) return false;
      selected.push_back(best);
      return true;
    }

    // WaitAll / SelectOne / SelectMany: every candidate port must be
    // satisfied at its phase rate.
    for (PortId pid : candidates) {
      const std::int64_t need = phaseRate(pid, st.fired);
      const graph::Port& p = g.port(pid);
      if (static_cast<std::int64_t>(state.queue[p.channel.index()].size()) <
          need) {
        return false;
      }
    }
    selected = candidates;
    return true;
  };

  double now = 0.0;

  // Attempts to start a firing of `a` at time `now`; returns true if one
  // started.
  auto tryStart = [&](const graph::Actor& a) -> bool {
    ActorState& st = actors[a.id.index()];
    if (st.pending.active || st.fired >= st.limit) return false;
    if (a.kind == ActorKind::Control &&
        model_->controlKind(a.id) == core::ControlKind::Clock) {
      return false;  // clocks are time-triggered, not data-triggered
    }

    // Control port handling: peek the mode token first.
    int modeIndex = st.currentMode;
    PortId controlPort;
    for (PortId pid : a.ports) {
      if (g.port(pid).kind == PortKind::ControlIn) controlPort = pid;
    }
    std::int64_t controlNeed = 0;
    if (controlPort.valid()) {
      controlNeed = phaseRate(controlPort, st.fired);
      if (controlNeed > 0) {
        const std::size_t c = g.port(controlPort).channel.index();
        if (state.queue[c].empty()) return false;
        modeIndex = static_cast<int>(state.queue[c].front().tag);
      }
    }

    std::vector<PortId> selected;
    if (!selectInputs(a, st, modeIndex, selected)) return false;

    // ---- Commit the firing. ----
    FiringContext ctx(g, a.id, st.fired, modeIndex, now,
                      a.execTimeOfPhase(st.fired));

    if (controlPort.valid() && controlNeed > 0) {
      const std::size_t c = g.port(controlPort).channel.index();
      Token t = state.pop(c);
      st.currentMode = modeIndex;
      ctx.inputs_[g.port(controlPort).name].push_back(std::move(t));
    }

    for (PortId pid : selected) {
      const graph::Port& p = g.port(pid);
      const std::int64_t need = phaseRate(pid, st.fired);
      auto& bucket = ctx.inputs_[p.name];
      for (std::int64_t i = 0; i < need; ++i) {
        bucket.push_back(state.pop(p.channel.index()));
      }
    }

    // Tokens on rejected data inputs are removed, not used (Section II-B).
    for (PortId pid : a.ports) {
      const graph::Port& p = g.port(pid);
      if (p.kind != PortKind::DataIn) continue;
      if (std::find(selected.begin(), selected.end(), pid) !=
          selected.end()) {
        continue;
      }
      const std::int64_t rejected = phaseRate(pid, st.fired);
      if (rejected > 0) state.discard(p.channel.index(), rejected);
    }

    const auto behaviour = behaviours_.find(a.id.value);
    if (behaviour != behaviours_.end()) behaviour->second(ctx);

    // Collect outputs, padded/validated against the phase rates.  In a
    // selecting mode with an explicit output set (Select-duplicate), the
    // kernel produces only on the enabled outputs.
    const core::ModeSpec& spec = modeSpecOf(a, modeIndex);
    PendingFiring pending;
    pending.active = true;
    pending.finish = now + ctx.duration();
    for (PortId pid : a.ports) {
      const graph::Port& p = g.port(pid);
      if (p.kind != PortKind::DataOut && p.kind != PortKind::ControlOut) {
        continue;
      }
      if (a.kind == ActorKind::Kernel && p.kind == PortKind::DataOut &&
          spec.mode != core::Mode::WaitAll && !spec.activeOutputs.empty() &&
          std::find(spec.activeOutputs.begin(), spec.activeOutputs.end(),
                    pid) == spec.activeOutputs.end()) {
        continue;  // disabled output: nothing produced
      }
      const std::int64_t rate = phaseRate(pid, st.fired);
      auto emitted = ctx.outputs_.find(p.name);
      std::vector<Token> tokens;
      if (emitted != ctx.outputs_.end()) tokens = std::move(emitted->second);
      if (static_cast<std::int64_t>(tokens.size()) > rate) {
        throw support::Error(
            "behaviour of '" + a.name + "' emitted " +
            std::to_string(tokens.size()) + " tokens on port '" + p.name +
            "' whose phase rate is " + std::to_string(rate));
      }
      tokens.resize(static_cast<std::size_t>(rate));
      if (!tokens.empty()) {
        pending.outputs.emplace_back(p.channel.index(), std::move(tokens));
      }
    }

    if (options.recordTrace) {
      result.trace.push_back(
          {a.id, st.fired, modeIndex, now, pending.finish});
    }
    st.pending = std::move(pending);
    ++st.fired;
    ++result.firings[a.id.index()];
    ++result.totalFirings;
    return true;
  };

  auto deliver = [&](const graph::Actor& a) {
    ActorState& st = actors[a.id.index()];
    for (auto& [c, tokens] : st.pending.outputs) {
      const std::size_t dst =
          view.destActor(ChannelId(static_cast<std::uint32_t>(c))).index();
      if (fabric != nullptr && !tokens.empty() &&
          a.kind != ActorKind::Control) {
        const std::size_t srcPe = options.actorPe[a.id.index()];
        const std::size_t dstPe = options.actorPe[dst];
        if (srcPe != dstPe && srcPe < fabric->peCount() &&
            dstPe < fabric->peCount()) {
          // Store-and-forward reservation walk over the precomputed
          // route: each link is held for its service time, and a link
          // still busy with an earlier transfer delays this one — the
          // contention model.
          double t = now;
          const auto count = static_cast<std::int64_t>(tokens.size());
          for (std::uint32_t lid : fabric->route(srcPe, dstPe)) {
            const double service = tpdf::platform::Topology::serviceTime(
                fabric->link(lid), count);
            t = std::max(t, linkFree[lid]) + service;
            linkFree[lid] = t;
            result.links[lid].transfers += 1;
            result.links[lid].busyTime += service;
          }
          if (t > now) {
            // Tokens arrive later; the consumer wakes on arrival.
            transfers.emplace(std::make_pair(t, transferSeq++),
                              std::make_pair(c, std::move(tokens)));
            continue;
          }
          // Zero-delay route (ideal fabric): fall through to the inline
          // delivery below so the firing order matches a platform-free
          // run exactly.
        }
      }
      for (Token& t : tokens) state.push(c, std::move(t));
      wake.insert(dst);
    }
    st.pending = PendingFiring{};
    wake.insert(a.id.index());  // the actor itself is free to start again
  };

  auto fireClock = [&](const graph::Actor& a) {
    ActorState& st = actors[a.id.index()];
    FiringContext ctx(g, a.id, st.fired, 0, now, 0.0);
    const auto behaviour = behaviours_.find(a.id.value);
    if (behaviour != behaviours_.end()) behaviour->second(ctx);
    for (PortId pid : a.ports) {
      const graph::Port& p = g.port(pid);
      if (p.kind != PortKind::ControlOut) continue;
      const std::int64_t rate = phaseRate(pid, st.fired);
      auto emitted = ctx.outputs_.find(p.name);
      std::vector<Token> tokens;
      if (emitted != ctx.outputs_.end()) tokens = std::move(emitted->second);
      tokens.resize(static_cast<std::size_t>(std::max<std::int64_t>(
          rate, static_cast<std::int64_t>(tokens.size()))));
      for (Token& t : tokens) state.push(p.channel.index(), std::move(t));
      if (!tokens.empty()) wake.insert(view.destActor(p.channel).index());
    }
    if (options.recordTrace) {
      result.trace.push_back({a.id, st.fired, 0, now, now});
    }
    ++st.fired;
    ++result.firings[a.id.index()];
    ++result.totalFirings;
    st.nextClockTick += *model_->clockPeriod(a.id);
  };

  // ---- Main event loop. -------------------------------------------------
  // Starts are driven by the wake set: a failed start attempt can only
  // succeed later if tokens arrived on one of the actor's input channels
  // or its own in-flight firing completed, and both paths re-insert the
  // actor.  Starting an actor never enables another one at the same
  // instant (consumption touches only the starter's own single-consumer
  // channels; production happens at completion), so one id-ordered pass
  // over the wake set reproduces the firing order of a full
  // rescan-until-fixpoint sweep.
  std::vector<std::size_t> due;
  while (true) {
    support::Budget::checkpoint(options.budget);
    // Start everything that can start at the current time.  The firing
    // cap gates starts (not event delivery), so a run that hits exactly
    // maxFirings still delivers its in-flight completions and can report
    // returnedToInitialState on the boundary.
    while (!wake.empty() && result.totalFirings < options.maxFirings) {
      support::Budget::checkpoint(options.budget);
      const std::size_t ai = *wake.begin();
      wake.erase(wake.begin());
      const graph::Actor& a = g.actors()[ai];
      if (tryStart(a)) events.push({actors[ai].pending.finish, ai});
    }

    // Advance to the next event: earliest completion, clock tick, or
    // transfer arrival.
    if (events.empty() && transfers.empty()) break;  // quiescent
    double next = std::numeric_limits<double>::infinity();
    if (!events.empty()) next = events.top().first;
    if (!transfers.empty()) {
      next = std::min(next, transfers.begin()->first.first);
    }
    if (next > options.stopTime) break;

    now = next;
    // Due transfer arrivals deliver first: like completions they can
    // only enable starts, and (arrival, sequence) order keeps the run
    // deterministic.
    while (!transfers.empty() && transfers.begin()->first.first <= now) {
      auto node = transfers.extract(transfers.begin());
      const std::size_t c = node.mapped().first;
      for (Token& t : node.mapped().second) state.push(c, std::move(t));
      wake.insert(
          view.destActor(ChannelId(static_cast<std::uint32_t>(c))).index());
    }
    due.clear();
    while (!events.empty() && events.top().first <= now) {
      due.push_back(events.top().second);
      events.pop();
    }
    std::sort(due.begin(), due.end());
    for (const std::size_t ai : due) {
      const graph::Actor& a = g.actors()[ai];
      ActorState& st = actors[ai];
      if (st.pending.active && st.pending.finish <= now) deliver(a);
      if (a.kind == ActorKind::Control &&
          model_->controlKind(a.id) == core::ControlKind::Clock &&
          st.nextClockTick <= now) {
        fireClock(a);
        if (st.nextClockTick <= options.stopTime) {
          events.push({st.nextClockTick, ai});
        }
      }
    }
  }

  result.endTime = now;
  result.channels = state.stats;

  // Dynamic Theorem 2 check: all dataflow actors completed their
  // iterations, nothing in flight, and every channel not fed by a clock
  // returned to its initial occupancy.
  bool complete = true;
  for (const graph::Actor& a : g.actors()) {
    const ActorState& st = actors[a.id.index()];
    if (st.pending.active) complete = false;
    if (st.limit != kUnlimited && st.fired != st.limit) complete = false;
  }
  if (complete) {
    result.returnedToInitialState = true;
    for (const graph::Channel& c : g.channels()) {
      const ActorId src = g.sourceActor(c.id);
      if (g.actor(src).kind == ActorKind::Control &&
          model_->controlKind(src) == core::ControlKind::Clock) {
        continue;
      }
      if (static_cast<std::int64_t>(state.queue[c.id.index()].size()) !=
              c.initialTokens ||
          state.discardDebt[c.id.index()] != 0) {
        result.returnedToInitialState = false;
        break;
      }
    }
  }

  result.ok = true;
  return result;
}

}  // namespace tpdf::sim
