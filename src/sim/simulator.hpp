// Discrete-event execution of TPDF graphs.
//
// Self-timed semantics: every actor is a sequential process (at most one
// firing in flight); a firing consumes its input tokens at start time and
// delivers its outputs at finish time.  TPDF specifics implemented here:
//   * kernels with a control port first read one control token whose tag
//     selects the mode they fire in;
//   * in a selecting mode the kernel waits only for its *active* inputs
//     (the defining TPDF relaxation); tokens arriving on rejected ports
//     are discarded ("removed") so the iteration state stays bounded;
//   * HighestPriority picks the satisfied input port with the largest
//     priority at firing time (the Transaction-at-deadline behaviour);
//   * clock control actors fire on every multiple of their period and
//     emit watchdog control tokens (Section II-B's "Clock").
//
// The run loop is event-driven: port rates are pre-evaluated to integer
// tables, completions and clock ticks live in a priority queue, and a
// wake set re-examines only the actors adjacent to channels that just
// received tokens (plus the actor whose firing completed) instead of
// rescanning the whole graph until fixpoint at every instant.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/context.hpp"
#include "core/model.hpp"
#include "platform/topology.hpp"
#include "sim/token.hpp"
#include "support/budget.hpp"
#include "support/json.hpp"
#include "symbolic/env.hpp"

namespace tpdf::sim {

/// Passed to an actor behaviour when a firing starts.
class FiringContext {
 public:
  FiringContext(const graph::Graph& g, graph::ActorId actor,
                std::int64_t firingIndex, int modeIndex, double now,
                double duration);

  graph::ActorId actor() const { return actor_; }
  /// 0-based firing count of this actor.
  std::int64_t firingIndex() const { return firingIndex_; }
  /// Index into the kernel's mode table (0 when the kernel has none).
  int modeIndex() const { return modeIndex_; }
  double now() const { return now_; }

  /// Tokens consumed from an input port this firing (empty for rejected
  /// ports and for ports with phase rate 0).
  const std::vector<Token>& inputs(const std::string& port) const;

  /// Queues one token for an output port; delivered at firing completion.
  /// Tokens beyond the port's phase rate are rejected with an error; if
  /// fewer are emitted, default tokens pad the difference.
  void emit(const std::string& port, Token token);

  /// Overrides the firing's execution time (defaults to the actor's
  /// per-phase execTime).
  void setDuration(double duration);
  double duration() const { return duration_; }

 private:
  friend class Simulator;

  const graph::Graph* graph_;
  graph::ActorId actor_;
  std::int64_t firingIndex_;
  int modeIndex_;
  double now_;
  double duration_;
  std::map<std::string, std::vector<Token>> inputs_;
  std::map<std::string, std::vector<Token>> outputs_;
};

/// Behaviour hook: invoked at firing start, after inputs were consumed.
using Behaviour = std::function<void(FiringContext&)>;

struct SimOptions {
  /// Wall-clock limit of simulated time; required finite when the model
  /// contains clock actors.
  double stopTime = std::numeric_limits<double>::infinity();
  /// Dataflow actors stop after completing this many graph iterations.
  std::int64_t iterations = 1;
  /// Hard safety cap on total firings.
  std::int64_t maxFirings = 1'000'000;
  /// Record one TraceEvent per firing in SimResult::trace.
  bool recordTrace = false;
  /// Optional cooperative budget, checkpointed once per event-loop step
  /// and per start attempt; run() throws support::BudgetExceeded when it
  /// trips.  Unlike maxFirings (which ends the run gracefully), a budget
  /// is a hard resource limit imposed by the caller.
  support::Budget* budget = nullptr;
  /// Optional interconnect (not owned; must outlive run()).  When set,
  /// a completed firing whose tokens cross PEs does not deliver them
  /// instantly: the transfer reserves each link of its precomputed
  /// route in turn (store-and-forward; a busy link delays it), so link
  /// contention emerges from serialization.  Transfers whose total
  /// delay is zero deliver inline, preserving the platform-free firing
  /// order — an ideal fabric reproduces trace-identical runs.
  /// Control-actor outputs are never routed (control tokens are
  /// quasi-instantaneous), nor are transfers touching a PE outside the
  /// fabric (e.g. a dedicated control PE).
  const platform::Topology* fabric = nullptr;
  /// Actor placement, indexed by actor id; required (size == actor
  /// count) when `fabric` is set.
  std::vector<std::size_t> actorPe;
};

/// One firing in the recorded execution trace.
struct TraceEvent {
  graph::ActorId actor;
  std::int64_t k = 0;    // firing index
  int mode = 0;          // selected mode
  double start = 0.0;
  double finish = 0.0;
};

struct ChannelStats {
  std::int64_t maxOccupancy = 0;
  std::int64_t produced = 0;
  std::int64_t consumed = 0;
  std::int64_t discarded = 0;
};

/// Traffic one interconnect link carried during a run (only populated
/// when SimOptions::fabric was set).
struct LinkStats {
  std::string link;
  std::int64_t transfers = 0;
  /// Total time the link was occupied by reservations.
  double busyTime = 0.0;
};

struct SimResult {
  bool ok = false;
  std::string diagnostic;
  double endTime = 0.0;
  std::int64_t totalFirings = 0;
  std::vector<std::int64_t> firings;     // per actor
  std::vector<ChannelStats> channels;    // per channel
  /// Per-link traffic, indexed by link id; empty without a fabric.
  std::vector<LinkStats> links;
  /// True when, after the requested iterations, every channel holds
  /// exactly its initial tokens again (the dynamic Theorem 2 check).
  bool returnedToInitialState = false;
  /// Populated when SimOptions::recordTrace is set; ordered by start.
  std::vector<TraceEvent> trace;

  const ChannelStats& channel(graph::ChannelId c) const {
    return channels.at(c.index());
  }

  /// Text timeline of the recorded trace, one line per firing:
  /// "[12.0-14.5] Sobel#0 (mode 0)".
  std::string renderTrace(const graph::Graph& g) const;

  /// {"ok": true, "endTime": ..., "totalFirings": N,
  /// "returnedToInitialState": true, "actors": [...], "channels": [...],
  /// "trace": [...]} ("trace" only when a trace was recorded).
  support::json::Value toJson(const graph::Graph& g) const;
};

class Simulator {
 public:
  Simulator(const core::TpdfGraph& model, symbolic::Environment env);

  /// Shares analysis intermediates with the caller: the repetition
  /// vector and the valuation's integer rate tables come from `ctx`
  /// (which must be built over `model.graph()` and outlive the
  /// simulator) instead of being recomputed per run() call.  Traces are
  /// identical to the two-argument constructor.
  Simulator(const core::TpdfGraph& model, symbolic::Environment env,
            const core::AnalysisContext* ctx);

  /// Installs a behaviour for an actor (payload computation, dynamic
  /// durations, control-token tags).  Without one, firings consume and
  /// produce default tokens.
  void setBehaviour(graph::ActorId actor, Behaviour behaviour);
  void setBehaviour(const std::string& actorName, Behaviour behaviour);

  SimResult run(const SimOptions& options = {});

 private:
  struct PendingFiring {
    double finish = 0.0;
    /// Output tokens resolved to their channel index at start time, so
    /// delivery is a straight push with no name lookups.
    std::vector<std::pair<std::size_t, std::vector<Token>>> outputs;
    bool active = false;
  };

  struct ActorState {
    std::int64_t fired = 0;
    std::int64_t limit = 0;          // q * iterations (clocks: unbounded)
    PendingFiring pending;
    int currentMode = 0;
    double nextClockTick = 0.0;      // clocks only
  };

  const core::TpdfGraph* model_;
  symbolic::Environment env_;
  /// Shared intermediates; null when the simulator owns no context and
  /// run() builds a local one.
  const core::AnalysisContext* ctx_ = nullptr;
  std::map<std::uint32_t, Behaviour> behaviours_;
};

}  // namespace tpdf::sim
