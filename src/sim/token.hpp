// Tokens carried by simulated channels.
//
// The analyses only count tokens; the simulator also moves them, so that
// the case studies can push real data (image buffers, OFDM symbols)
// through a TPDF graph.  A token has an integer tag (on control channels
// the tag selects the receiver's mode) and an optional opaque payload.
//
// Tokens are moved by sim::Simulator (simulator.hpp); actor callbacks
// receive and emit them per firing phase.
#pragma once

#include <any>
#include <cstdint>

namespace tpdf::sim {

struct Token {
  /// On control channels: index into the receiving kernel's mode table.
  /// On data channels: application-defined.
  std::int64_t tag = 0;
  /// Optional data payload (e.g. a std::shared_ptr to an image).
  std::any payload;
};

}  // namespace tpdf::sim
