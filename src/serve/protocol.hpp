// Wire protocol of the tpdfd daemon: newline-delimited JSON requests,
// one envelope response per request.
//
// Framing.  A request is one line of UTF-8 JSON terminated by '\n' (a
// trailing '\r' is tolerated, blank lines are ignored).  LineFramer
// accumulates partial reads into complete lines and latches an
// oversized-line condition: a line that exceeds the configured bound is
// never buffered further — the server answers one `oversized-line`
// reject envelope and drops the connection.
//
// Requests.  {"command": "<name>", ...} — commands mirror the tpdfc
// subcommands (analyze, schedule, buffers, map, simulate, sweep, batch,
// verify) plus daemon-side ones (load, erase, stats, ping).  A graph is
// referenced by inline source text ("graph"), a server-side file
// ("path"), or a previously loaded id ("id"); inline text and files are
// admitted through the shared GraphCache, so identical sources from any
// number of clients share one parsed graph and one memoized
// AnalysisContext.
//
// Responses.  The existing one-envelope contract: {"tool": "tpdfd",
// "version", "command", "status", "diagnostics", ...payload}, exactly
// the api::*Response::toJson() documents tpdfc --json prints, plus a
// "serve" block ({"cached": bool, "analysisUs": µs}) on graph commands
// so clients can separate server-side analysis cost from transport.
// Malformed JSON yields a positioned `invalid-request` diagnostic (the
// parse error's line/column refer to the request line itself).
//
// ClientSession is one connection's protocol state: its own
// api::Session (id namespace isolation between clients) over the shared
// cache.  handle() is synchronous and never throws; the server runs it
// on a worker pool.  Holding GraphCache::Entry::mutex for the duration
// of a request serializes work per cached graph (the shared
// AnalysisContext is not thread-safe) while distinct graphs proceed in
// parallel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/session.hpp"
#include "serve/cache.hpp"

namespace tpdf::support {
class Budget;
}

namespace tpdf::serve {

/// Splits a byte stream into newline-terminated frames.
class LineFramer {
 public:
  /// Lines longer than `maxLineBytes` latch overflow; 0 = unbounded.
  explicit LineFramer(std::size_t maxLineBytes)
      : maxLineBytes_(maxLineBytes) {}

  /// Appends complete lines (without the terminator, '\r' stripped,
  /// blank lines skipped) to `out`.  Returns false once a line exceeds
  /// the bound — the framer stays latched and buffers nothing further.
  bool feed(std::string_view bytes, std::vector<std::string>& out);

  bool overflowed() const { return overflowed_; }
  /// Bytes of the current (incomplete) line.
  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::string buffer_;
  std::size_t maxLineBytes_;
  bool overflowed_ = false;
};

/// Server-side policy applied to every request of a connection.
struct RequestPolicy {
  /// Deadline applied when the request carries none (0 = none).
  std::int64_t defaultTimeoutMs = 0;
  /// Run-wide cancel source (the daemon's hard-shutdown switch); chained
  /// into every request budget.  Must outlive the session.
  const support::Budget* cancelParent = nullptr;
};

/// One connection's protocol state: a private api::Session namespace
/// over the shared graph cache.
class ClientSession {
 public:
  ClientSession(GraphCache& cache, RequestPolicy policy)
      : cache_(cache), policy_(policy) {}

  struct Result {
    /// The envelope, compact JSON, no trailing newline.
    std::string line;
    /// The envelope's status (drives logging/metrics; the wire carries
    /// the string form).
    api::Status status = api::Status::Ok;
    std::string command;
  };

  /// Executes one framed request line.  Never throws; every failure is
  /// an envelope with structured diagnostics.
  Result handle(const std::string& requestLine);

  /// The reject envelope the server sends before dropping a connection
  /// whose current line exceeded `maxLineBytes` (LineFramer overflow
  /// means the offending request can never be parsed).
  static Result oversizedLineReject(std::size_t maxLineBytes);

  /// The backpressure reject: the server's bounded request queue is
  /// full.  status resource-limit with a `server-overloaded` diagnostic
  /// — the request was NOT executed and is safe to retry.
  static Result overloadedReject(std::size_t maxQueue);

 private:
  struct Target {
    std::shared_ptr<GraphCache::Entry> entry;
    std::string id;
    bool cached = false;  // true when served from the shared cache (hit)
  };

  /// Resolves the request's graph reference ("graph" text, "path", or
  /// "id") into an adopted session graph; records failures on `bad`.
  Target resolveTarget(const support::json::Value& doc, api::Response& bad);

  GraphCache& cache_;
  RequestPolicy policy_;
  api::Session session_;
  /// Cache entries adopted into session_, by session id: requests
  /// against these graphs must hold the entry mutex (shared context).
  std::map<std::string, std::shared_ptr<GraphCache::Entry>> adopted_;
};

}  // namespace tpdf::serve
