// The tpdfd daemon core: socket accept/IO loop + worker pool.
//
// Topology.  One IO thread (the run() caller) owns every file
// descriptor: it accepts connections, reads bytes into per-connection
// LineFramers, and flushes response bytes.  Framed request lines are
// dispatched to a support::ThreadPool of workers, each executing
// ClientSession::handle() (an api::Session operation under the shared
// GraphCache).  Workers never touch sockets: they append the finished
// envelope to the connection's output buffer and wake the IO thread
// through the self-pipe, so a slow or dead client can never stall a
// worker.
//
// Ordering.  At most ONE request per connection is in flight at a time
// (later lines queue on the connection), so responses arrive in request
// order without sequence numbers.  Distinct connections execute
// concurrently up to the worker count.
//
// Backpressure.  `maxQueue` bounds the requests admitted to the pool
// across all connections.  A request that arrives while the queue is
// full is answered immediately with a `server-overloaded` envelope
// (status resource-limit, exit 4 at the client) and NOT executed — safe
// to retry.  `maxClients` bounds accepted connections; excess accepts
// are closed right away.
//
// Robustness.  Per-request deadlines (client-specified or the server
// default) run on worker-local Budgets chained to the run-wide cancel.
// Idle connections (no bytes for `idleTimeoutMs`) and oversized request
// lines are dropped — the latter after one `oversized-line` reject.
//
// Shutdown.  requestStop() is async-signal-safe (atomic flag + one
// write to the self-pipe).  First call: graceful — stop accepting,
// stop reading, finish every in-flight request, flush every buffered
// envelope, then run() returns (exit 0).  Second call: hard — the
// run-wide cancel Budget trips every in-flight request's budget, which
// unwinds as `resource-limit` envelopes; drain then proceeds as above,
// so even a hard stop never tears an envelope mid-write.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "support/budget.hpp"
#include "support/threadpool.hpp"

namespace tpdf::serve {

struct ServerConfig {
  /// Unix-domain socket path (preferred; takes precedence over TCP).
  std::string unixPath;
  /// TCP listen address, used when unixPath is empty.  port 0 picks an
  /// ephemeral port (Server::boundPort() reports it — tests use this).
  std::string host = "127.0.0.1";
  int port = 0;

  /// Worker threads; 0 = hardware concurrency (clamped to [1, 16]).
  std::size_t workers = 0;
  /// Bound on requests in flight across all connections (>= 1).
  std::size_t maxQueue = 64;
  /// Bound on accepted connections.
  std::size_t maxClients = 64;
  /// Request lines longer than this are rejected (bytes).
  std::size_t maxLineBytes = std::size_t{4} << 20;
  /// Drop connections with no traffic for this long; 0 = never.
  std::int64_t idleTimeoutMs = 0;
  /// Default per-request deadline when the client sends none; 0 = none.
  std::int64_t requestTimeoutMs = 0;
  /// Hard bound on a graceful drain: after this long, connections are
  /// closed with whatever has been flushed so far (a client that never
  /// reads its socket must not pin the daemon open forever).
  std::int64_t drainTimeoutMs = 5000;

  /// Shared graph cache bounds (see GraphCache; 0 = unbounded).
  std::size_t cacheEntries = 64;
  std::size_t cacheBytes = std::size_t{256} << 20;
};

/// Aggregate serving counters (IO-thread owned, snapshot via stats()).
struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t requests = 0;
  std::uint64_t rejectedOverload = 0;
  std::uint64_t rejectedOversized = 0;
  std::uint64_t idleDisconnects = 0;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens; throws support::Error on socket failure.
  void start();

  /// Runs the IO loop until a stop request has fully drained.  Call
  /// start() first.
  void run();

  /// Async-signal-safe stop request; see the shutdown contract above.
  void requestStop();

  /// The TCP port actually bound (after start(); 0 for unix sockets).
  int boundPort() const { return boundPort_; }

  const GraphCache& cache() const { return cache_; }
  /// Safe to call only after run() returned (IO-thread owned).
  const ServerStats& stats() const { return stats_; }

 private:
  struct Connection;

  void acceptReady();
  void readReady(Connection& conn);
  void flushReady(Connection& conn);
  void dispatchPending(const std::shared_ptr<Connection>& conn);
  void closeConnection(Connection& conn);

  ServerConfig config_;
  GraphCache cache_;
  support::Budget runCancel_;  // chained into every request budget

  int listenFd_ = -1;
  int wakeRead_ = -1;
  int wakeWrite_ = -1;
  int boundPort_ = 0;

  std::atomic<int> stopRequests_{0};

  // IO-thread state.
  std::vector<std::shared_ptr<Connection>> connections_;
  std::size_t inFlight_ = 0;  // worker jobs outstanding (guarded by ioMutex_)
  std::mutex ioMutex_;        // guards inFlight_ + per-connection outbufs
  ServerStats stats_;

  std::unique_ptr<support::ThreadPool> pool_;
};

}  // namespace tpdf::serve
