#include "serve/cache.hpp"

#include <utility>

#include "io/format.hpp"

namespace tpdf::serve {

std::uint64_t contentHash(std::string_view text) {
  // FNV-1a, 64-bit.
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string cacheId(std::uint64_t hash) {
  static const char* hex = "0123456789abcdef";
  std::string id = "#0000000000000000";
  for (int i = 16; i >= 1; --i) {
    id[static_cast<std::size_t>(i)] = hex[hash & 0xf];
    hash >>= 4;
  }
  return id;
}

support::json::Value CacheStats::toJson() const {
  auto doc = support::json::Value::object();
  doc.set("hits", static_cast<std::int64_t>(hits));
  doc.set("misses", static_cast<std::int64_t>(misses));
  doc.set("evictions", static_cast<std::int64_t>(evictions));
  doc.set("invalidations", static_cast<std::int64_t>(invalidations));
  doc.set("entries", static_cast<std::int64_t>(entries));
  doc.set("bytes", static_cast<std::int64_t>(bytes));
  return doc;
}

GraphCache::GraphCache(std::size_t maxEntries, std::size_t maxBytes)
    : maxEntries_(maxEntries), maxBytes_(maxBytes) {}

GraphCache::Acquired GraphCache::acquire(const std::string& text) {
  const std::uint64_t hash = contentHash(text);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(hash);
    if (it != index_.end()) {
      std::shared_ptr<Entry> entry = *it->second;
      if (entry->model->graph().revision() == entry->revision) {
        ++counters_.hits;
        lru_.splice(lru_.begin(), lru_, it->second);
        return {std::move(entry), true};
      }
      // The stored graph was mutated since its context was memoized:
      // the cached analysis state is stale.  Drop it and re-admit.
      ++counters_.invalidations;
      bytes_ -= entry->bytes;
      lru_.erase(it->second);
      index_.erase(it);
    }
  }

  // Miss: parse and build the analysis context OUTSIDE the cache lock,
  // so concurrent misses on different graphs proceed in parallel.  Bad
  // input throws here (ParseError/ModelError) and the cache stays
  // untouched.
  auto fresh = std::make_shared<Entry>();
  fresh->hash = hash;
  fresh->id = cacheId(hash);
  fresh->model = std::make_shared<core::TpdfGraph>(io::readGraph(text));
  fresh->ctx =
      std::make_shared<core::AnalysisContext>(fresh->model->graph());
  const graph::Graph& g = fresh->model->graph();
  fresh->revision = g.revision();
  fresh->bytes =
      text.size() + g.namePoolBytes() + g.frozenBytes() + sizeof(Entry);

  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(hash);
  if (it != index_.end()) {
    // Same-hash race: another client admitted this graph while we
    // parsed.  Converge on the shared entry (ours is dropped); still a
    // miss for accounting — this thread did pay the parse.
    ++counters_.misses;
    lru_.splice(lru_.begin(), lru_, it->second);
    return {*it->second, false};
  }
  ++counters_.misses;
  bytes_ += fresh->bytes;
  lru_.push_front(fresh);
  index_.emplace(hash, lru_.begin());
  evictLocked();
  return {std::move(fresh), false};
}

void GraphCache::evictLocked() {
  while (lru_.size() > 1 &&
         ((maxEntries_ != 0 && lru_.size() > maxEntries_) ||
          (maxBytes_ != 0 && bytes_ > maxBytes_))) {
    const std::shared_ptr<Entry>& victim = lru_.back();
    ++counters_.evictions;
    bytes_ -= victim->bytes;
    index_.erase(victim->hash);
    lru_.pop_back();
  }
}

CacheStats GraphCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats snapshot = counters_;
  snapshot.entries = lru_.size();
  snapshot.bytes = bytes_;
  return snapshot;
}

}  // namespace tpdf::serve
