#include "serve/protocol.hpp"

#include <chrono>
#include <fstream>
#include <mutex>
#include <sstream>
#include <utility>

#include "api/version.hpp"
#include "core/sweep.hpp"
#include "support/budget.hpp"
#include "support/error.hpp"

namespace tpdf::serve {

// ---- LineFramer ---------------------------------------------------------

bool LineFramer::feed(std::string_view bytes, std::vector<std::string>& out) {
  if (overflowed_) return false;
  std::size_t start = 0;
  while (start < bytes.size()) {
    const std::size_t nl = bytes.find('\n', start);
    if (nl == std::string_view::npos) {
      buffer_.append(bytes.substr(start));
      break;
    }
    buffer_.append(bytes.substr(start, nl - start));
    if (maxLineBytes_ != 0 && buffer_.size() > maxLineBytes_) {
      overflowed_ = true;
      buffer_.clear();
      return false;
    }
    if (!buffer_.empty() && buffer_.back() == '\r') buffer_.pop_back();
    if (!buffer_.empty()) out.push_back(std::move(buffer_));
    buffer_.clear();
    start = nl + 1;
  }
  if (maxLineBytes_ != 0 && buffer_.size() > maxLineBytes_) {
    overflowed_ = true;
    buffer_.clear();
    return false;
  }
  return true;
}

// ---- envelope helpers ---------------------------------------------------

namespace {

using support::json::Value;

/// {"tool": "tpdfd", "version", "command"} + the response document's
/// members verbatim — the same envelope shape tpdfc --json emits.
Value envelope(const std::string& command, Value doc) {
  auto env = Value::object();
  env.set("tool", "tpdfd");
  env.set("version", api::version().semver);
  env.set("command", command);
  for (auto& [key, value] : doc.members()) env.set(key, std::move(value));
  return env;
}

ClientSession::Result finish(const std::string& command, Value doc,
                             api::Status status) {
  ClientSession::Result result;
  result.line = envelope(command, std::move(doc)).dump();
  result.status = status;
  result.command = command;
  return result;
}

/// An envelope carrying only status + diagnostics (no payload ran).
ClientSession::Result reject(const std::string& command,
                             const api::Response& response) {
  auto doc = Value::object();
  doc.set("status", toString(response.status));
  doc.set("diagnostics", response.diagnosticsJson());
  return finish(command, std::move(doc), response.status);
}

/// The per-request "serve" block: was the graph served from the shared
/// cache, and how long did the server-side execution take (transport
/// excluded)?
Value serveBlock(bool cached, double analysisUs) {
  auto doc = Value::object();
  doc.set("cached", cached);
  doc.set("analysisUs", analysisUs);
  return doc;
}

/// Reads `limits` ({"timeout-ms": N, "max-work": N}) and applies the
/// connection policy: the server default deadline fills in when the
/// request names none, and the run-wide cancel parent always chains.
api::ResourceLimits parseLimits(const Value& doc, const RequestPolicy& policy,
                                api::Response& bad) {
  api::ResourceLimits out;
  out.timeoutMs = policy.defaultTimeoutMs;
  out.cancelParent = policy.cancelParent;
  const Value* limits = doc.find("limits");
  if (limits == nullptr) return out;
  if (!limits->isObject()) {
    bad.fail(api::Status::InvalidRequest, "invalid-request",
             "\"limits\" must be an object");
    return out;
  }
  if (const Value* t = limits->find("timeout-ms")) {
    if (!t->isInt() || t->asInt() < 0) {
      bad.fail(api::Status::InvalidRequest, "invalid-request",
               "\"limits.timeout-ms\" must be a non-negative integer");
    } else if (t->asInt() > 0) {
      out.timeoutMs = t->asInt();
    }
  }
  if (const Value* w = limits->find("max-work")) {
    if (!w->isInt() || w->asInt() < 0) {
      bad.fail(api::Status::InvalidRequest, "invalid-request",
               "\"limits.max-work\" must be a non-negative integer");
    } else {
      out.maxWork = w->asInt();
    }
  }
  return out;
}

/// {"p": 2, ...} -> Environment.  Values must be positive integers (the
/// Environment's own rule, surfaced as invalid-request here).
symbolic::Environment parseBindings(const Value& doc, const char* key,
                                    api::Response& bad) {
  symbolic::Environment env;
  const Value* bindings = doc.find(key);
  if (bindings == nullptr) return env;
  if (!bindings->isObject()) {
    bad.fail(api::Status::InvalidRequest, "invalid-request",
             std::string("\"") + key + "\" must be an object");
    return env;
  }
  for (const auto& [name, value] : bindings->members()) {
    if (!value.isInt()) {
      bad.fail(api::Status::InvalidRequest, "invalid-request",
               "binding \"" + name + "\" must be an integer");
      return env;
    }
    try {
      env.bind(name, value.asInt());
    } catch (const support::Error& e) {
      bad.fail(api::Status::InvalidRequest, "invalid-request", e.what());
      return env;
    }
  }
  return env;
}

/// Optional string field with a type check.
std::string stringField(const Value& doc, const char* key,
                        api::Response& bad) {
  const Value* v = doc.find(key);
  if (v == nullptr) return "";
  if (!v->isString()) {
    bad.fail(api::Status::InvalidRequest, "invalid-request",
             std::string("\"") + key + "\" must be a string");
    return "";
  }
  return v->asString();
}

/// Optional non-negative integer field with a type check.
std::int64_t intField(const Value& doc, const char* key,
                      std::int64_t fallback, api::Response& bad) {
  const Value* v = doc.find(key);
  if (v == nullptr) return fallback;
  if (!v->isInt() || v->asInt() < 0) {
    bad.fail(api::Status::InvalidRequest, "invalid-request",
             std::string("\"") + key + "\" must be a non-negative integer");
    return fallback;
  }
  return v->asInt();
}

csdf::SchedulePolicy parsePolicy(const Value& doc,
                                 csdf::SchedulePolicy fallback,
                                 api::Response& bad) {
  const Value* v = doc.find("policy");
  if (v == nullptr) return fallback;
  if (v->isString() && v->asString() == "eager") {
    return csdf::SchedulePolicy::Eager;
  }
  if (v->isString() && v->asString() == "min-occupancy") {
    return csdf::SchedulePolicy::MinOccupancy;
  }
  bad.fail(api::Status::InvalidRequest, "invalid-request",
           "\"policy\" must be \"eager\" or \"min-occupancy\"");
  return fallback;
}

/// {"p": "1:8", "q": "1,2,4"} -> sweep axes (SweepAxis::parse grammar).
std::vector<core::SweepAxis> parseAxes(const Value& doc,
                                       api::Response& bad) {
  std::vector<core::SweepAxis> axes;
  const Value* v = doc.find("axes");
  if (v == nullptr) return axes;
  if (!v->isObject()) {
    bad.fail(api::Status::InvalidRequest, "invalid-request",
             "\"axes\" must be an object of param -> \"lo:hi[:step]\" or "
             "\"v1,v2,...\" specs");
    return axes;
  }
  for (const auto& [param, spec] : v->members()) {
    if (!spec.isString()) {
      bad.fail(api::Status::InvalidRequest, "invalid-request",
               "axis \"" + param + "\" must be a string spec");
      return axes;
    }
    try {
      axes.push_back(core::SweepAxis::parse(param, spec.asString()));
    } catch (const support::Error& e) {
      bad.fail(api::Status::InvalidRequest, "invalid-request",
               "axis \"" + param + "\": " + e.what());
      return axes;
    }
  }
  return axes;
}

std::vector<std::string> stringListField(const Value& doc, const char* key,
                                         api::Response& bad) {
  std::vector<std::string> out;
  const Value* v = doc.find(key);
  if (v == nullptr) return out;
  if (!v->isArray()) {
    bad.fail(api::Status::InvalidRequest, "invalid-request",
             std::string("\"") + key + "\" must be an array of strings");
    return out;
  }
  for (const Value& item : v->items()) {
    if (!item.isString()) {
      bad.fail(api::Status::InvalidRequest, "invalid-request",
               std::string("\"") + key + "\" must be an array of strings");
      return out;
    }
    out.push_back(item.asString());
  }
  return out;
}

/// Optional array of positive numbers (e.g. "link-bandwidths").
std::vector<double> numberListField(const Value& doc, const char* key,
                                    api::Response& bad) {
  std::vector<double> out;
  const Value* v = doc.find(key);
  if (v == nullptr) return out;
  if (!v->isArray()) {
    bad.fail(api::Status::InvalidRequest, "invalid-request",
             std::string("\"") + key + "\" must be an array of numbers");
    return out;
  }
  for (const Value& item : v->items()) {
    if (item.isInt()) {
      out.push_back(static_cast<double>(item.asInt()));
    } else if (item.isDouble()) {
      out.push_back(item.asDouble());
    } else {
      bad.fail(api::Status::InvalidRequest, "invalid-request",
               std::string("\"") + key + "\" must be an array of numbers");
      return out;
    }
  }
  return out;
}

/// Reads a server-side file into a string (for "path" graph refs);
/// failures surface as input-error diagnostics.
bool readFileText(const std::string& path, std::string& out,
                  api::Response& bad) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    bad.fail(api::Status::InputError, "io-error",
             "cannot open '" + path + "'", path);
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

/// Microseconds elapsed since `start`.
double elapsedUs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

// ---- canned rejects -----------------------------------------------------

ClientSession::Result ClientSession::oversizedLineReject(
    std::size_t maxLineBytes) {
  api::Response response;
  response.fail(api::Status::InvalidRequest, "oversized-line",
                "request line exceeds the " + std::to_string(maxLineBytes) +
                    "-byte limit; connection closed");
  return reject("", response);
}

ClientSession::Result ClientSession::overloadedReject(std::size_t maxQueue) {
  api::Response response;
  response.fail(api::Status::ResourceLimit, "server-overloaded",
                "request queue is full (" + std::to_string(maxQueue) +
                    " in flight); the request was not executed — retry "
                    "after a backoff");
  return reject("", response);
}

// ---- target resolution --------------------------------------------------

ClientSession::Target ClientSession::resolveTarget(const Value& doc,
                                                   api::Response& bad) {
  Target target;
  const std::string text = stringField(doc, "graph", bad);
  const std::string path = stringField(doc, "path", bad);
  const std::string id = stringField(doc, "id", bad);
  if (!bad.ok()) return target;
  const int refs = (text.empty() ? 0 : 1) + (path.empty() ? 0 : 1) +
                   (id.empty() ? 0 : 1);
  if (refs == 0) {
    bad.fail(api::Status::InvalidRequest, "invalid-request",
             "request needs a graph reference: inline \"graph\" text, a "
             "server-side \"path\", or a loaded \"id\"");
    return target;
  }
  if (refs > 1) {
    bad.fail(api::Status::InvalidRequest, "invalid-request",
             "\"graph\", \"path\" and \"id\" are mutually exclusive");
    return target;
  }

  if (!id.empty()) {
    // Previously loaded/adopted; unknown ids fall through to the
    // session's own unknown-graph diagnostic.
    target.id = id;
    const auto it = adopted_.find(id);
    if (it != adopted_.end()) {
      target.entry = it->second;
      target.cached = true;
    } else if (!session_.has(id)) {
      bad.fail(api::Status::InvalidRequest, "unknown-graph",
               "no graph '" + id + "' loaded on this connection");
    }
    return target;
  }

  std::string source = text;
  if (!path.empty() && !readFileText(path, source, bad)) return target;

  // Admission through the shared cache (may throw on bad input; the
  // caller runs us under guardedRun).
  GraphCache::Acquired acquired = cache_.acquire(source);
  target.entry = std::move(acquired.entry);
  target.cached = acquired.hit;
  target.id = target.entry->id;
  if (!session_.has(target.id)) {
    session_.adopt(target.id, target.entry->model, target.entry->ctx);
    adopted_.emplace(target.id, target.entry);
  }
  return target;
}

// ---- request execution --------------------------------------------------

ClientSession::Result ClientSession::handle(const std::string& requestLine) {
  std::string command;
  api::Response bad;

  Value doc;
  try {
    doc = support::json::parse(requestLine);
  } catch (const support::ParseError& e) {
    bad.fail(api::Status::InvalidRequest, "invalid-request", e.message(), "",
             e.line(), e.column());
    return reject(command, bad);
  }
  if (!doc.isObject()) {
    bad.fail(api::Status::InvalidRequest, "invalid-request",
             "request must be a JSON object");
    return reject(command, bad);
  }
  const Value* cmd = doc.find("command");
  if (cmd == nullptr || !cmd->isString()) {
    bad.fail(api::Status::InvalidRequest, "invalid-request",
             "request needs a string \"command\"");
    return reject(command, bad);
  }
  command = cmd->asString();

  // ---- commands without a graph target ----
  if (command == "ping") {
    auto payload = Value::object();
    payload.set("status", "ok");
    payload.set("diagnostics", Value::array());
    return finish(command, std::move(payload), api::Status::Ok);
  }
  if (command == "stats") {
    auto payload = Value::object();
    payload.set("status", "ok");
    payload.set("diagnostics", Value::array());
    payload.set("cache", cache_.stats().toJson());
    auto graphs = Value::array();
    for (const std::string& id : session_.graphIds()) graphs.push(id);
    payload.set("graphs", std::move(graphs));
    return finish(command, std::move(payload), api::Status::Ok);
  }
  if (command == "erase") {
    const std::string id = stringField(doc, "id", bad);
    if (bad.ok() && id.empty()) {
      bad.fail(api::Status::InvalidRequest, "invalid-request",
               "erase needs an \"id\"");
    }
    if (bad.ok() && !session_.erase(id)) {
      bad.fail(api::Status::InvalidRequest, "unknown-graph",
               "no graph '" + id + "' loaded on this connection");
    }
    adopted_.erase(id);
    return reject(command, bad);  // status ok + empty diagnostics on success
  }
  if (command == "batch" || command == "verify") {
    // Corpus commands: server-side paths, no cache involvement (each
    // file is read and analyzed once; session state untouched).
    api::Response probe;
    const api::ResourceLimits limits = parseLimits(doc, policy_, probe);
    const symbolic::Environment bindings =
        parseBindings(doc, "bindings", probe);
    const std::string directory = stringField(doc, "directory", probe);
    const std::vector<std::string> files = stringListField(doc, "files", probe);
    const std::int64_t jobs = intField(doc, "jobs", 0, probe);
    if (!probe.ok()) return reject(command, probe);
    const auto start = std::chrono::steady_clock::now();
    if (command == "batch") {
      api::BatchRequest request;
      request.directory = directory;
      request.files = files;
      request.bindings = bindings;
      request.jobs = static_cast<std::size_t>(jobs);
      request.limits = limits;
      api::BatchResponse response = session_.batch(request);
      Value payload = response.toJson();
      payload.set("serve", serveBlock(false, elapsedUs(start)));
      return finish(command, std::move(payload), response.status);
    }
    api::VerifyRequest request;
    request.directory = directory;
    request.files = files;
    request.bindings = bindings;
    request.limits = limits;
    api::VerifyResponse response = session_.verify(request);
    Value payload = response.toJson();
    payload.set("serve", serveBlock(false, elapsedUs(start)));
    return finish(command, std::move(payload), response.status);
  }

  const bool isLoad = command == "load";
  const bool isGraphCommand =
      isLoad || command == "analyze" || command == "schedule" ||
      command == "buffers" || command == "map" || command == "simulate" ||
      command == "sweep";
  if (!isGraphCommand) {
    bad.fail(api::Status::InvalidRequest, "invalid-request",
             "unknown command '" + command + "'");
    return reject(command, bad);
  }

  // ---- graph commands: resolve the target through the shared cache ----
  Target target;
  if (isLoad) {
    // load: admit text/path into the cache, then adopt under the
    // client-chosen id (or the cache id).  The "id" field names the NEW
    // session key here, not an existing graph, so resolve by hand.
    const std::string text = stringField(doc, "graph", bad);
    const std::string path = stringField(doc, "path", bad);
    if (bad.ok() && text.empty() == path.empty()) {
      bad.fail(api::Status::InvalidRequest, "invalid-request",
               "load takes inline \"graph\" text or a \"path\", not both");
    }
    if (!bad.ok()) return reject(command, bad);
    std::string source = text;
    if (!path.empty() && !readFileText(path, source, bad)) {
      return reject(command, bad);
    }
    api::LoadResponse response;
    api::guardedRun(response, path, [&] {
      GraphCache::Acquired acquired = cache_.acquire(source);
      const std::string id = stringField(doc, "id", response);
      const std::string key = id.empty() ? acquired.entry->id : id;
      if (!session_.has(key)) {
        session_.adopt(key, acquired.entry->model, acquired.entry->ctx);
        adopted_.emplace(key, acquired.entry);
      } else if (adopted_.count(key) == 0 ||
                 adopted_[key] != acquired.entry) {
        response.fail(api::Status::InvalidRequest, "duplicate-graph",
                      "graph '" + key +
                          "' is already loaded (erase it first)");
        return;
      }
      const graph::Graph& g = acquired.entry->model->graph();
      response.id = key;
      response.graphName = g.name();
      response.actorCount = g.actorCount();
      response.channelCount = g.channelCount();
      response.params.assign(g.params().begin(), g.params().end());
    });
    Value payload = response.toJson();
    return finish(command, std::move(payload), response.status);
  }

  api::Response resolveProbe;
  api::guardedRun(resolveProbe, "",
                  [&] { target = resolveTarget(doc, resolveProbe); });
  if (!resolveProbe.ok()) return reject(command, resolveProbe);

  const api::ResourceLimits limits = parseLimits(doc, policy_, bad);
  const symbolic::Environment bindings = parseBindings(doc, "bindings", bad);
  if (!bad.ok()) return reject(command, bad);

  // Serialize on the shared cache entry: the memoized AnalysisContext
  // is single-threaded state.  Requests against different graphs run in
  // parallel on the worker pool.
  std::unique_lock<std::mutex> entryLock;
  if (target.entry != nullptr) {
    entryLock = std::unique_lock<std::mutex>(target.entry->mutex);
  }
  const auto start = std::chrono::steady_clock::now();

  if (command == "analyze") {
    api::AnalyzeRequest request;
    request.graphId = target.id;
    request.bindings = bindings;
    request.limits = limits;
    api::AnalyzeResponse response = session_.analyze(request);
    const double us = elapsedUs(start);
    Value payload = response.toJson(session_.graph(target.id));
    payload.set("serve", serveBlock(target.cached, us));
    return finish(command, std::move(payload), response.status);
  }
  if (command == "schedule") {
    api::ScheduleRequest request;
    request.graphId = target.id;
    request.bindings = bindings;
    request.limits = limits;
    request.policy = parsePolicy(doc, csdf::SchedulePolicy::Eager, bad);
    if (const Value* b = doc.find("buffers")) {
      if (!b->isBool()) {
        bad.fail(api::Status::InvalidRequest, "invalid-request",
                 "\"buffers\" must be a boolean");
      } else {
        request.computeBuffers = b->asBool();
      }
    }
    if (!bad.ok()) return reject(command, bad);
    api::ScheduleResponse response = session_.schedule(request);
    const double us = elapsedUs(start);
    Value payload = response.toJson(session_.graph(target.id));
    payload.set("serve", serveBlock(target.cached, us));
    return finish(command, std::move(payload), response.status);
  }
  if (command == "buffers") {
    api::BufferRequest request;
    request.graphId = target.id;
    request.bindings = bindings;
    request.limits = limits;
    request.policy =
        parsePolicy(doc, csdf::SchedulePolicy::MinOccupancy, bad);
    if (!bad.ok()) return reject(command, bad);
    api::BufferResponse response = session_.buffers(request);
    const double us = elapsedUs(start);
    Value payload = response.toJson(session_.graph(target.id));
    payload.set("serve", serveBlock(target.cached, us));
    return finish(command, std::move(payload), response.status);
  }
  if (command == "map") {
    api::MapRequest request;
    request.graphId = target.id;
    request.bindings = bindings;
    request.limits = limits;
    request.pes =
        static_cast<std::size_t>(intField(doc, "pes", 4, bad));
    request.platform = stringField(doc, "platform", bad);
    if (!bad.ok()) return reject(command, bad);
    api::MapResponse response = session_.map(request);
    const double us = elapsedUs(start);
    Value payload = response.toJson();
    payload.set("serve", serveBlock(target.cached, us));
    return finish(command, std::move(payload), response.status);
  }
  if (command == "simulate") {
    api::SimulateRequest request;
    request.graphId = target.id;
    request.bindings = bindings;
    request.limits = limits;
    request.options.iterations = intField(doc, "iterations", 1, bad);
    request.options.maxFirings =
        intField(doc, "max-firings", request.options.maxFirings, bad);
    request.platform = stringField(doc, "platform", bad);
    if (!bad.ok()) return reject(command, bad);
    api::SimulateResponse response = session_.simulate(request);
    const double us = elapsedUs(start);
    Value payload = response.toJson(session_.graph(target.id));
    payload.set("serve", serveBlock(target.cached, us));
    return finish(command, std::move(payload), response.status);
  }
  // sweep
  api::SweepRequest request;
  request.graphId = target.id;
  request.fixed = bindings;
  request.limits = limits;
  request.axes = parseAxes(doc, bad);
  request.maxPoints = static_cast<std::size_t>(
      intField(doc, "max-points",
               static_cast<std::int64_t>(request.maxPoints), bad));
  request.jobs =
      static_cast<std::size_t>(intField(doc, "jobs", 0, bad));
  request.pes = static_cast<std::size_t>(intField(doc, "pes", 4, bad));
  request.platform = stringField(doc, "platform", bad);
  request.linkBandwidths = numberListField(doc, "link-bandwidths", bad);
  request.topologies = stringListField(doc, "topologies", bad);
  if (!bad.ok()) return reject(command, bad);
  api::SweepResponse response = session_.sweep(request);
  const double us = elapsedUs(start);
  Value payload = response.toJson();
  payload.set("serve", serveBlock(target.cached, us));
  return finish(command, std::move(payload), response.status);
}

}  // namespace tpdf::serve
