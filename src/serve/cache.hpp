// Shared graph cache of the tpdfd daemon.
//
// tpdfd clients send graphs as inline .tpdf text; the cache keys each
// graph by a 64-bit FNV-1a hash of that text, so any number of clients
// submitting the SAME source share ONE parsed core::TpdfGraph and ONE
// memoized core::AnalysisContext — the second client's analyze request
// lands on precomputed repetition vectors and rate tables instead of
// re-deriving them (the repeated-analysis speedup the bench suite pins
// at ~3x, now shared across processes).
//
// Bounds and eviction: the cache is LRU-bounded by BOTH entry count and
// resident bytes (source text + the graph's interned-name pool + frozen
// CSR arena, Graph::namePoolBytes()/frozenBytes()).  Eviction only
// unlinks the entry from the cache: clients that adopted it keep their
// shared_ptrs, so in-flight requests never race a disappearing graph.
//
// Concurrency: the cache's own index is mutex-guarded; parsing and
// context construction happen OUTSIDE that lock (concurrent misses on
// different graphs proceed in parallel) with a re-check on insert so a
// same-hash race still converges on one shared entry.  AnalysisContext
// itself is NOT thread-safe — Entry::mutex serializes request execution
// over one entry while requests against different graphs run in
// parallel.
//
// Invalidation: Entry::revision records Graph::revision() at admission;
// a later acquire that finds the stored graph mutated (revision bumped)
// drops the stale entry and re-admits fresh state, counted in
// CacheStats::invalidations.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/context.hpp"
#include "core/model.hpp"
#include "support/json.hpp"

namespace tpdf::serve {

/// 64-bit FNV-1a over the graph source text (the cache key).
std::uint64_t contentHash(std::string_view text);

/// The session id a cached graph is adopted under: "#" + 16 hex digits
/// of its content hash.  The '#' prefix cannot collide with a
/// client-chosen id (graph names never start with '#').
std::string cacheId(std::uint64_t hash);

/// Monotonic counters + a point-in-time size snapshot.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;

  /// {"hits": ..., "misses": ..., "evictions": ..., "invalidations":
  /// ..., "entries": ..., "bytes": ...} — the `stats` wire command's
  /// cache payload.
  support::json::Value toJson() const;
};

class GraphCache {
 public:
  /// One cached graph.  Shared by every client that submitted the same
  /// source text; outlives eviction through the shared_ptr.
  struct Entry {
    std::uint64_t hash = 0;
    /// cacheId(hash) — the id clients adopt the graph under.
    std::string id;
    std::shared_ptr<core::TpdfGraph> model;
    std::shared_ptr<core::AnalysisContext> ctx;
    /// Graph::revision() at admission; a mismatch on a later lookup
    /// means the graph was mutated and the memoized context is stale.
    std::uint64_t revision = 0;
    /// Resident-size estimate used for the byte bound.
    std::size_t bytes = 0;
    /// Serializes request execution over the shared (non-thread-safe)
    /// AnalysisContext.  Different entries run in parallel.
    std::mutex mutex;
  };

  struct Acquired {
    std::shared_ptr<Entry> entry;
    /// True when the entry pre-existed (no parse, shared context).
    bool hit = false;
  };

  /// 0 means unbounded on that axis.  At least one admitted entry is
  /// always retained, so a single graph larger than maxBytes still
  /// serves (it just evicts everything else).
  GraphCache(std::size_t maxEntries, std::size_t maxBytes);

  GraphCache(const GraphCache&) = delete;
  GraphCache& operator=(const GraphCache&) = delete;

  /// Looks up (or parses, analyzes and admits) the graph with this
  /// source text.  Throws what the reader/validator throws on a miss
  /// over bad input (support::ParseError with position, ModelError);
  /// the cache is unchanged in that case.
  Acquired acquire(const std::string& text);

  CacheStats stats() const;
  std::size_t maxEntries() const { return maxEntries_; }
  std::size_t maxBytes() const { return maxBytes_; }

 private:
  using Lru = std::list<std::shared_ptr<Entry>>;

  /// Evicts from the LRU tail until both bounds hold (keeps >= 1).
  void evictLocked();

  const std::size_t maxEntries_;
  const std::size_t maxBytes_;

  mutable std::mutex mutex_;
  Lru lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, Lru::iterator> index_;
  std::size_t bytes_ = 0;
  CacheStats counters_;  // entries/bytes filled in by stats()
};

}  // namespace tpdf::serve
