#include "serve/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <netdb.h>

#include <cstring>
#include <utility>

#include "support/error.hpp"

namespace tpdf::serve {

namespace {

int connectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw support::Error("connect: unix socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw support::Error("connect: cannot create socket: " +
                         std::string(std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw support::Error("connect: '" + path + "': " + why);
  }
  return fd;
}

int connectTcp(const std::string& host, const std::string& port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &results);
  if (rc != 0 || results == nullptr) {
    throw support::Error("connect: cannot resolve " + host + ":" + port +
                         ": " + ::gai_strerror(rc));
  }
  int fd = -1;
  std::string why = "no addresses";
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    why = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd < 0) {
    throw support::Error("connect: " + host + ":" + port + ": " + why);
  }
  return fd;
}

}  // namespace

Client Client::connect(const std::string& address,
                       std::int64_t recvTimeoutMs) {
  int fd = -1;
  if (address.rfind("unix:", 0) == 0) {
    fd = connectUnix(address.substr(5));
  } else if (address.rfind("tcp:", 0) == 0) {
    const std::string rest = address.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      throw support::Error("connect: tcp address needs host:port, got '" +
                           address + "'");
    }
    fd = connectTcp(rest.substr(0, colon), rest.substr(colon + 1));
  } else if (address.find('/') != std::string::npos) {
    fd = connectUnix(address);
  } else {
    const std::size_t colon = address.rfind(':');
    if (colon == std::string::npos) {
      throw support::Error(
          "connect: expected unix:/path, tcp:host:port, a socket path, or "
          "host:port, got '" + address + "'");
    }
    fd = connectTcp(address.substr(0, colon), address.substr(colon + 1));
  }
  if (recvTimeoutMs > 0) {
    timeval tv{};
    tv.tv_sec = recvTimeoutMs / 1000;
    tv.tv_usec = static_cast<suseconds_t>((recvTimeoutMs % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void Client::send(const std::string& line) {
  if (fd_ < 0) throw support::Error("send: not connected");
  std::string framed = line;
  framed += '\n';
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n =
        ::write(fd_, framed.data() + off, framed.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw support::Error("send: connection lost: " +
                           std::string(n < 0 ? std::strerror(errno)
                                             : "closed"));
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string Client::receive() {
  if (fd_ < 0) throw support::Error("receive: not connected");
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[65536];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n == 0) {
      throw support::Error("receive: server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw support::Error("receive: " + std::string(std::strerror(errno)));
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string Client::request(const std::string& line) {
  send(line);
  return receive();
}

}  // namespace tpdf::serve
