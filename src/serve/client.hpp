// Blocking client for the tpdfd wire protocol.
//
// One Client is one connection: send a request line, read the one
// envelope line the daemon answers with.  Used by `tpdfc --connect`,
// the loadtest driver, and the end-to-end test suite.  IO failures
// (refused connection, EOF mid-response, timeout) throw support::Error;
// protocol-level failures arrive as ordinary envelopes.
//
// Addresses: "unix:/path/to.sock", "tcp:host:port", or shorthand — a
// string containing '/' is a unix socket path, "host:port" is TCP.
#pragma once

#include <cstdint>
#include <string>

namespace tpdf::serve {

class Client {
 public:
  /// Connects (throws support::Error on failure).  `recvTimeoutMs`
  /// bounds each response wait; 0 = block forever.
  static Client connect(const std::string& address,
                        std::int64_t recvTimeoutMs = 0);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends `line` (terminator appended) and returns the response line.
  /// Throws support::Error on EOF — including the clean disconnect the
  /// daemon performs after an oversized-line reject, in which case the
  /// reject envelope (already read) comes first.
  std::string request(const std::string& line);

  /// Sends without waiting (pipelining / shutdown tests).
  void send(const std::string& line);
  /// Reads the next response line (whether or not send() was used).
  std::string receive();

  void close();
  bool connected() const { return fd_ >= 0; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;  // bytes read past the last returned line
};

}  // namespace tpdf::serve
