#include "serve/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <thread>
#include <utility>

#include "support/error.hpp"

namespace tpdf::serve {

namespace {

using Clock = std::chrono::steady_clock;

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::size_t resolveWorkers(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw == 0 ? 4 : hw, 1, 16);
}

}  // namespace

struct Server::Connection {
  Connection(int fd, std::size_t maxLineBytes, GraphCache& cache,
             RequestPolicy policy)
      : fd(fd), framer(maxLineBytes), session(cache, policy) {}

  int fd;
  LineFramer framer;
  ClientSession session;
  /// Framed lines awaiting dispatch (IO thread only).
  std::deque<std::string> pending;
  /// Response bytes awaiting write; guarded by Server::ioMutex_ (workers
  /// append, the IO thread flushes).
  std::string outbuf;
  /// One request on the pool right now; guarded by Server::ioMutex_.
  bool inFlight = false;
  bool closeAfterFlush = false;
  bool closed = false;
  Clock::time_point lastActivity = Clock::now();
};

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      cache_(config_.cacheEntries, config_.cacheBytes) {
  if (config_.maxQueue == 0) config_.maxQueue = 1;
}

Server::~Server() {
  pool_.reset();  // joins workers before connections are torn down
  for (const auto& conn : connections_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  if (listenFd_ >= 0) ::close(listenFd_);
  if (wakeRead_ >= 0) ::close(wakeRead_);
  if (wakeWrite_ >= 0) ::close(wakeWrite_);
  if (!config_.unixPath.empty()) ::unlink(config_.unixPath.c_str());
}

void Server::start() {
  int pipeFds[2];
  if (::pipe(pipeFds) != 0) {
    throw support::Error("tpdfd: cannot create wake pipe: " +
                         std::string(std::strerror(errno)));
  }
  wakeRead_ = pipeFds[0];
  wakeWrite_ = pipeFds[1];
  setNonBlocking(wakeRead_);
  setNonBlocking(wakeWrite_);

  if (!config_.unixPath.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.unixPath.size() >= sizeof(addr.sun_path)) {
      throw support::Error("tpdfd: unix socket path too long: " +
                           config_.unixPath);
    }
    std::strncpy(addr.sun_path, config_.unixPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
      throw support::Error("tpdfd: cannot create unix socket: " +
                           std::string(std::strerror(errno)));
    }
    ::unlink(config_.unixPath.c_str());  // stale socket from a crash
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw support::Error("tpdfd: cannot bind '" + config_.unixPath +
                           "': " + std::strerror(errno));
    }
  } else {
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
      throw support::Error("tpdfd: cannot create TCP socket: " +
                           std::string(std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
      throw support::Error("tpdfd: bad listen address: " + config_.host);
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw support::Error("tpdfd: cannot bind " + config_.host + ":" +
                           std::to_string(config_.port) + ": " +
                           std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      boundPort_ = ntohs(bound.sin_port);
    }
  }
  if (::listen(listenFd_, 128) != 0) {
    throw support::Error("tpdfd: listen failed: " +
                         std::string(std::strerror(errno)));
  }
  setNonBlocking(listenFd_);
  pool_ = std::make_unique<support::ThreadPool>(
      resolveWorkers(config_.workers));
}

void Server::requestStop() {
  // Async-signal-safe: a lock-free atomic increment plus one write(2).
  stopRequests_.fetch_add(1, std::memory_order_relaxed);
  if (wakeWrite_ >= 0) {
    const char byte = 's';
    [[maybe_unused]] const auto n = ::write(wakeWrite_, &byte, 1);
  }
}

void Server::acceptReady() {
  for (;;) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: try next poll round
    if (connections_.size() >= config_.maxClients) {
      ::close(fd);  // bounded accept queue: shed before any work is done
      continue;
    }
    setNonBlocking(fd);
    RequestPolicy policy;
    policy.defaultTimeoutMs = config_.requestTimeoutMs;
    policy.cancelParent = &runCancel_;
    connections_.push_back(std::make_shared<Connection>(
        fd, config_.maxLineBytes, cache_, policy));
    ++stats_.accepted;
  }
}

void Server::readReady(Connection& conn) {
  char buffer[65536];
  for (;;) {
    const ssize_t n = ::read(conn.fd, buffer, sizeof(buffer));
    if (n == 0) {  // orderly client close
      closeConnection(conn);
      return;
    }
    if (n < 0) return;  // EAGAIN (or error: surfaces as POLLERR/HUP later)
    conn.lastActivity = Clock::now();
    std::vector<std::string> lines;
    if (!conn.framer.feed(std::string_view(buffer,
                                           static_cast<std::size_t>(n)),
                          lines)) {
      // Oversized line: one structured reject, then drop the connection
      // (the stream can never resynchronize on a frame boundary).
      ++stats_.rejectedOversized;
      const ClientSession::Result r =
          ClientSession::oversizedLineReject(config_.maxLineBytes);
      {
        std::lock_guard<std::mutex> lock(ioMutex_);
        conn.outbuf += r.line;
        conn.outbuf += '\n';
      }
      conn.closeAfterFlush = true;
      conn.pending.clear();
      return;
    }
    for (std::string& line : lines) conn.pending.push_back(std::move(line));
    if (static_cast<std::size_t>(n) < sizeof(buffer)) return;
  }
}

void Server::dispatchPending(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(ioMutex_);
  while (!conn->inFlight && !conn->pending.empty() && !conn->closed &&
         !conn->closeAfterFlush) {
    if (inFlight_ >= config_.maxQueue) {
      // Backpressure: answer instead of queueing unboundedly.  The
      // request is NOT executed; the client sees resource-limit with a
      // server-overloaded diagnostic and may retry.
      const ClientSession::Result r =
          ClientSession::overloadedReject(config_.maxQueue);
      conn->outbuf += r.line;
      conn->outbuf += '\n';
      ++stats_.rejectedOverload;
      conn->pending.pop_front();
      continue;
    }
    std::string line = std::move(conn->pending.front());
    conn->pending.pop_front();
    conn->inFlight = true;
    ++inFlight_;
    ++stats_.requests;
    std::shared_ptr<Connection> self = conn;
    pool_->submit([this, self, line = std::move(line)]() mutable {
      const ClientSession::Result result = self->session.handle(line);
      {
        std::lock_guard<std::mutex> workerLock(ioMutex_);
        if (!self->closed) {
          self->outbuf += result.line;
          self->outbuf += '\n';
        }
        self->inFlight = false;
        --inFlight_;
      }
      // Wake the IO thread to flush the response / dispatch the next
      // pending line on this connection.
      if (wakeWrite_ >= 0) {
        const char byte = 'r';
        [[maybe_unused]] const auto n = ::write(wakeWrite_, &byte, 1);
      }
    });
  }
}

void Server::flushReady(Connection& conn) {
  std::lock_guard<std::mutex> lock(ioMutex_);
  while (!conn.outbuf.empty()) {
    const ssize_t n =
        ::write(conn.fd, conn.outbuf.data(), conn.outbuf.size());
    if (n <= 0) return;  // EAGAIN or a dying socket: retry next round
    conn.outbuf.erase(0, static_cast<std::size_t>(n));
    conn.lastActivity = Clock::now();
  }
  if (conn.closeAfterFlush) closeConnection(conn);
}

void Server::closeConnection(Connection& conn) {
  if (conn.fd >= 0) ::close(conn.fd);
  conn.fd = -1;
  conn.closed = true;
  conn.pending.clear();
}

void Server::run() {
  if (listenFd_ < 0 || pool_ == nullptr) {
    throw support::Error("tpdfd: run() before start()");
  }
  bool draining = false;
  bool hardCancelled = false;
  Clock::time_point drainStart{};

  for (;;) {
    const int stops = stopRequests_.load(std::memory_order_relaxed);
    if (stops > 0 && !draining) {
      // Graceful: refuse new connections and new requests, keep every
      // in-flight request running to its complete envelope.
      draining = true;
      drainStart = Clock::now();
      ::close(listenFd_);
      listenFd_ = -1;
    }
    if (stops > 1 && !hardCancelled) {
      // Hard: trip every in-flight budget; requests unwind promptly as
      // resource-limit envelopes and the drain below completes fast.
      hardCancelled = true;
      runCancel_.cancel();
    }

    if (!draining) {
      for (const auto& conn : connections_) dispatchPending(conn);
    }

    // Reap closed connections nobody references for work anymore.
    {
      std::lock_guard<std::mutex> lock(ioMutex_);
      connections_.erase(
          std::remove_if(connections_.begin(), connections_.end(),
                         [](const std::shared_ptr<Connection>& c) {
                           return c->closed && !c->inFlight;
                         }),
          connections_.end());
    }

    if (draining) {
      std::lock_guard<std::mutex> lock(ioMutex_);
      const bool flushed = std::all_of(
          connections_.begin(), connections_.end(),
          [](const std::shared_ptr<Connection>& c) {
            return c->closed || c->outbuf.empty();
          });
      const bool expired =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              Clock::now() - drainStart)
              .count() > config_.drainTimeoutMs;
      if ((inFlight_ == 0 && flushed) || expired) break;
    }

    std::vector<pollfd> fds;
    std::vector<std::shared_ptr<Connection>> polled;
    fds.push_back(pollfd{wakeRead_, POLLIN, 0});
    std::size_t listenSlot = static_cast<std::size_t>(-1);
    if (!draining && listenFd_ >= 0 &&
        connections_.size() < config_.maxClients) {
      listenSlot = fds.size();
      fds.push_back(pollfd{listenFd_, POLLIN, 0});
    }
    const std::size_t firstConn = fds.size();
    for (const auto& conn : connections_) {
      if (conn->closed) continue;
      short events = 0;
      if (!draining && !conn->closeAfterFlush) events |= POLLIN;
      {
        std::lock_guard<std::mutex> lock(ioMutex_);
        if (!conn->outbuf.empty()) events |= POLLOUT;
      }
      if (events == 0 && draining) continue;
      fds.push_back(pollfd{conn->fd, events, 0});
      polled.push_back(conn);
    }

    ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
           /*timeout=*/250);

    if ((fds[0].revents & POLLIN) != 0) {
      char sink[64];
      while (::read(wakeRead_, sink, sizeof(sink)) > 0) {
      }
    }
    if (listenSlot != static_cast<std::size_t>(-1) &&
        (fds[listenSlot].revents & POLLIN) != 0) {
      acceptReady();
    }
    for (std::size_t i = 0; i < polled.size(); ++i) {
      Connection& conn = *polled[i];
      if (conn.closed) continue;
      const short revents = fds[firstConn + i].revents;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0 && !draining) {
        readReady(conn);
      }
      if (conn.closed) continue;
      if ((revents & (POLLOUT | POLLHUP | POLLERR)) != 0 || draining) {
        flushReady(conn);
      }
      if (!conn.closed && (revents & (POLLHUP | POLLERR)) != 0 &&
          !conn.inFlight) {
        closeConnection(conn);
      }
    }

    // Idle sweep: drop quiet connections with nothing queued or owed.
    if (config_.idleTimeoutMs > 0 && !draining) {
      const auto now = Clock::now();
      for (const auto& conn : connections_) {
        if (conn->closed || conn->inFlight || !conn->pending.empty()) {
          continue;
        }
        bool quiet;
        {
          std::lock_guard<std::mutex> lock(ioMutex_);
          quiet = conn->outbuf.empty();
        }
        if (quiet &&
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - conn->lastActivity)
                    .count() > config_.idleTimeoutMs) {
          ++stats_.idleDisconnects;
          closeConnection(*conn);
        }
      }
    }
  }

  // Drained (or drain deadline hit): wait out the pool, then close
  // everything.  Responses were flushed above; nothing is torn.
  pool_->wait();
  for (const auto& conn : connections_) {
    if (!conn->closed) closeConnection(*conn);
  }
  connections_.clear();
}

}  // namespace tpdf::serve
