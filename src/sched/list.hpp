// Static list scheduling of a canonical period onto a Platform
// (Section III-D).
//
// The two TPDF-specific rules are implemented exactly as stated:
//   1. control actors have the highest scheduling priority (a ready
//      control occurrence is placed before any ready kernel occurrence,
//      optionally on a dedicated PE);
//   2. a kernel that receives a control token is released by the arrival
//      of that token: its control dependencies carry no link latency
//      ("the system acts as if it was instantaneous") and control-token
//      receivers are preferred among kernels of equal rank.
// Ties are broken by critical-path rank (longest path to a sink).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/canonical.hpp"
#include "sched/platform.hpp"
#include "support/json.hpp"

namespace tpdf::sched {

struct ScheduledOccurrence {
  std::size_t node = 0;   // index into CanonicalPeriod::nodes()
  std::size_t pe = 0;
  double start = 0.0;
  double finish = 0.0;
};

struct ListSchedule {
  std::vector<ScheduledOccurrence> entries;  // in start order
  double makespan = 0.0;

  /// Entry of a given canonical-period node.
  const ScheduledOccurrence& of(std::size_t node) const;

  /// Gantt-style rendering, one line per PE.
  std::string toString(const CanonicalPeriod& cp) const;

  /// {"makespan": 12.5, "entries": [{"node": "A1", "pe": 0, "start":
  /// 0.0, "finish": 1.0}, ...]} in start order.
  support::json::Value toJson(const CanonicalPeriod& cp) const;
};

struct ListSchedulerOptions {
  /// Disable rule 1 (used by the scheduling ablation bench).
  bool controlPriority = true;
};

/// Schedules `cp` on `platform`.  Every dependency is honoured; a node
/// starts at max(PE available, preds finish + link latency if mapped on a
/// different PE; control-token edges are latency-free).  A non-null
/// `budget` is checkpointed once per placed occurrence and may abort
/// with support::BudgetExceeded.
ListSchedule listSchedule(const CanonicalPeriod& cp, const Platform& platform,
                          const ListSchedulerOptions& options = {},
                          support::Budget* budget = nullptr);

/// Static per-link load of one canonical iteration under the platform's
/// topology: every cross-PE data dependency contributes one unit-token
/// transfer along its precomputed route.  Indexed by link id; empty when
/// the platform has no topology.  Dependencies touching the off-fabric
/// control PE are not routed (control traffic is quasi-instantaneous).
struct LinkLoad {
  std::int64_t transfers = 0;
  /// Total uncontended occupancy (sum of per-transfer service times).
  double busy = 0.0;
};
std::vector<LinkLoad> linkLoad(const CanonicalPeriod& cp,
                               const ListSchedule& schedule,
                               const Platform& platform);

}  // namespace tpdf::sched
