#include "sched/adf.hpp"

#include <algorithm>
#include <deque>
#include <set>

namespace tpdf::sched {

using graph::ActorId;
using graph::Graph;

std::vector<bool> unnecessaryFirings(const CanonicalPeriod& cp,
                                     const Graph& g, ActorId kernel,
                                     const core::ModeSpec& mode) {
  return unnecessaryFirings(cp, graph::GraphView(g), kernel, mode);
}

std::vector<bool> unnecessaryFirings(const CanonicalPeriod& cp,
                                     const graph::GraphView& view,
                                     ActorId kernel,
                                     const core::ModeSpec& mode) {
  const Graph& g = view.graph();
  const std::size_t n = cp.size();

  // Rejected input ports of the kernel: data inputs not listed as active
  // (an empty active list means every port stays active).
  std::set<graph::ChannelId> rejectedChannels;
  if (!mode.activeInputs.empty()) {
    for (graph::PortId pid : g.actor(kernel).ports) {
      const graph::Port& p = g.port(pid);
      if (p.kind != graph::PortKind::DataIn) continue;
      const bool active =
          std::find(mode.activeInputs.begin(), mode.activeInputs.end(),
                    pid) != mode.activeInputs.end();
      if (!active) rejectedChannels.insert(p.channel);
    }
  }

  // An edge u -> v of the canonical period crosses a rejected port iff v
  // is an occurrence of `kernel` and u's actor feeds the kernel only
  // through rejected channels (a producer also reaching an active input
  // keeps its dependency).
  auto edgeRejected = [&](std::size_t u, std::size_t v) {
    if (cp.node(v).actor != kernel) return false;
    if (cp.node(u).actor == kernel) return false;  // sequential self-edge
    bool feedsRejected = false;
    for (graph::ChannelId cid : view.outChannels(cp.node(u).actor)) {
      if (view.destActor(cid) != kernel) continue;
      if (rejectedChannels.count(cid) != 0) {
        feedsRejected = true;
      } else {
        return false;  // also feeds an active port of the kernel
      }
    }
    return feedsRejected;
  };

  // Terminal utility: occurrences of the kernel itself and of every graph
  // sink (actors with no outgoing channels).
  std::vector<bool> useful(n, false);
  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < n; ++i) {
    const ActorId a = cp.node(i).actor;
    if (a == kernel || view.outChannels(a).empty()) {
      useful[i] = true;
      queue.push_back(i);
    }
  }

  // Reverse reachability over non-rejected edges.
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop_front();
    for (std::size_t u : cp.predecessors(v)) {
      if (useful[u] || edgeRejected(u, v)) continue;
      useful[u] = true;
      queue.push_back(u);
    }
  }

  std::vector<bool> unnecessary(n);
  for (std::size_t i = 0; i < n; ++i) unnecessary[i] = !useful[i];
  return unnecessary;
}

}  // namespace tpdf::sched
