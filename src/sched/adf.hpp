// Actor Dependence Function (Section III-D, second rule).
//
// When a kernel fires in a mode that rejects some of its data inputs,
// the scheduler "uses the Actor Dependence Function [8] ... to stop
// unnecessary firings": producer occurrences whose tokens only ever flow
// into rejected ports need not execute.  unnecessaryFirings computes that
// set on the canonical period.
#pragma once

#include <vector>

#include "core/model.hpp"
#include "graph/view.hpp"
#include "sched/canonical.hpp"

namespace tpdf::sched {

/// Marks, for each canonical-period node, whether the firing becomes
/// unnecessary when `kernel` fires in mode `mode` for the whole
/// iteration.  A firing is necessary iff some dependency path that does
/// not cross a rejected input port of `kernel` leads from it to an
/// occurrence of `kernel` itself or of any graph sink.
std::vector<bool> unnecessaryFirings(const CanonicalPeriod& cp,
                                     const graph::Graph& g,
                                     graph::ActorId kernel,
                                     const core::ModeSpec& mode);

/// Same over a precomputed view (the Graph overload builds a temporary
/// one): per-edge rejection tests read the CSR adjacency instead of
/// allocating an outChannels vector per edge.
std::vector<bool> unnecessaryFirings(const CanonicalPeriod& cp,
                                     const graph::GraphView& view,
                                     graph::ActorId kernel,
                                     const core::ModeSpec& mode);

}  // namespace tpdf::sched
