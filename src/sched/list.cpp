#include "sched/list.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "platform/topology.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace tpdf::sched {

using graph::ActorKind;

const ScheduledOccurrence& ListSchedule::of(std::size_t node) const {
  for (const ScheduledOccurrence& e : entries) {
    if (e.node == node) return e;
  }
  throw support::Error("node " + std::to_string(node) +
                       " is not part of the schedule");
}

std::string ListSchedule::toString(const CanonicalPeriod& cp) const {
  std::size_t peMax = 0;
  for (const ScheduledOccurrence& e : entries) peMax = std::max(peMax, e.pe);

  std::ostringstream os;
  for (std::size_t pe = 0; pe <= peMax; ++pe) {
    os << "PE" << pe << ":";
    for (const ScheduledOccurrence& e : entries) {
      if (e.pe != pe) continue;
      os << " [" << support::formatDouble(e.start) << "-"
         << support::formatDouble(e.finish) << "] " << cp.nodeName(e.node);
    }
    os << "\n";
  }
  os << "makespan: " << support::formatDouble(makespan) << "\n";
  return os.str();
}

support::json::Value ListSchedule::toJson(const CanonicalPeriod& cp) const {
  auto doc = support::json::Value::object();
  doc.set("makespan", makespan);
  auto list = support::json::Value::array();
  for (const ScheduledOccurrence& e : entries) {
    auto entry = support::json::Value::object();
    entry.set("node", cp.nodeName(e.node));
    entry.set("pe", e.pe);
    entry.set("start", e.start);
    entry.set("finish", e.finish);
    list.push(std::move(entry));
  }
  doc.set("entries", std::move(list));
  return doc;
}

ListSchedule listSchedule(const CanonicalPeriod& cp, const Platform& platform,
                          const ListSchedulerOptions& options,
                          support::Budget* budget) {
  if (platform.peCount == 0) {
    throw support::Error("platform must have at least one PE");
  }
  if (platform.topology != nullptr &&
      platform.topology->peCount() != platform.peCount) {
    throw support::Error("platform topology covers " +
                         std::to_string(platform.topology->peCount()) +
                         " PEs but peCount is " +
                         std::to_string(platform.peCount));
  }
  const graph::Graph& g = cp.graph();
  const std::size_t n = cp.size();

  // Critical-path ranks over the reverse topological order.
  std::vector<double> rank(n, 0.0);
  const std::vector<std::size_t> topo = cp.topologicalOrder();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const std::size_t i = *it;
    double best = 0.0;
    for (std::size_t s : cp.successors(i)) best = std::max(best, rank[s]);
    rank[i] = cp.execTime(i) + best;
  }

  // Per-actor control flag, derived once: the ready-queue priority scan
  // below consults it O(n * ready) times.
  std::vector<char> actorIsControl(g.actorCount(), 0);
  for (const graph::Actor& a : g.actors()) {
    actorIsControl[a.id.index()] = a.kind == ActorKind::Control ? 1 : 0;
  }
  auto isControlNode = [&](std::size_t i) {
    return actorIsControl[cp.node(i).actor.index()] != 0;
  };
  // An edge from a control actor carries a control token: latency-free
  // (rule 2: the receiver fires immediately on token arrival).
  auto isControlEdge = [&](std::size_t from) { return isControlNode(from); };

  const std::size_t workerCount = platform.peCount;
  const std::size_t totalPes =
      workerCount + (platform.dedicatedControlPe ? 1 : 0);
  const std::size_t controlPe = workerCount;  // last PE when dedicated

  std::vector<double> peAvailable(totalPes, 0.0);
  std::vector<ScheduledOccurrence> placed(n);
  std::vector<bool> scheduled(n, false);
  std::vector<std::size_t> unscheduledPreds(n);
  for (std::size_t i = 0; i < n; ++i) {
    unscheduledPreds[i] = cp.predecessors(i).size();
  }

  ListSchedule out;
  out.entries.reserve(n);

  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (unscheduledPreds[i] == 0) ready.push_back(i);
  }

  // Cross-PE communication cost: the uncontended traversal of the
  // topology route when both PEs are on the fabric, the legacy uniform
  // linkLatency otherwise (no topology, or the off-fabric control PE).
  const tpdf::platform::Topology* fabric = platform.topology;
  auto commCost = [&](std::size_t from, std::size_t to) {
    if (fabric != nullptr && from < fabric->peCount() &&
        to < fabric->peCount()) {
      return fabric->routeCost(from, to, 1);
    }
    return platform.linkLatency;
  };

  // Earliest start of node i on PE pe given the already-placed preds.
  auto earliestStartOn = [&](std::size_t i, std::size_t pe) {
    double t = peAvailable[pe];
    for (std::size_t p : cp.predecessors(i)) {
      double arrival = placed[p].finish;
      if (placed[p].pe != pe && !isControlEdge(p)) {
        arrival += commCost(placed[p].pe, pe);
      }
      t = std::max(t, arrival);
    }
    return t;
  };

  while (!ready.empty()) {
    support::Budget::checkpoint(budget);
    // Pick the highest-priority ready node: control actors first (rule 1),
    // then by descending rank, then by node index for determinism.
    std::size_t bestIdx = 0;
    for (std::size_t r = 1; r < ready.size(); ++r) {
      const std::size_t a = ready[r];
      const std::size_t b = ready[bestIdx];
      const bool aCtl = options.controlPriority && isControlNode(a);
      const bool bCtl = options.controlPriority && isControlNode(b);
      if (aCtl != bCtl) {
        if (aCtl) bestIdx = r;
        continue;
      }
      if (rank[a] != rank[b]) {
        if (rank[a] > rank[b]) bestIdx = r;
        continue;
      }
      if (a < b) bestIdx = r;
    }
    const std::size_t node = ready[bestIdx];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(bestIdx));

    // Choose the PE minimizing start time.
    std::size_t chosenPe = 0;
    double chosenStart = std::numeric_limits<double>::infinity();
    if (platform.dedicatedControlPe && isControlNode(node)) {
      chosenPe = controlPe;
      chosenStart = earliestStartOn(node, controlPe);
    } else {
      for (std::size_t pe = 0; pe < workerCount; ++pe) {
        const double start = earliestStartOn(node, pe);
        if (start < chosenStart) {
          chosenStart = start;
          chosenPe = pe;
        }
      }
    }

    ScheduledOccurrence so;
    so.node = node;
    so.pe = chosenPe;
    so.start = chosenStart;
    so.finish = chosenStart + cp.execTime(node);
    placed[node] = so;
    scheduled[node] = true;
    peAvailable[chosenPe] = so.finish;
    out.entries.push_back(so);
    out.makespan = std::max(out.makespan, so.finish);

    for (std::size_t s : cp.successors(node)) {
      if (--unscheduledPreds[s] == 0) ready.push_back(s);
    }
  }

  if (out.entries.size() != n) {
    throw support::Error("list scheduler failed to place every occurrence");
  }
  std::sort(out.entries.begin(), out.entries.end(),
            [](const ScheduledOccurrence& a, const ScheduledOccurrence& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.node < b.node;
            });
  return out;
}

std::vector<LinkLoad> linkLoad(const CanonicalPeriod& cp,
                               const ListSchedule& schedule,
                               const Platform& platform) {
  const tpdf::platform::Topology* fabric = platform.topology;
  if (fabric == nullptr) return {};
  const graph::Graph& g = cp.graph();
  std::vector<char> actorIsControl(g.actorCount(), 0);
  for (const graph::Actor& a : g.actors()) {
    actorIsControl[a.id.index()] =
        a.kind == graph::ActorKind::Control ? 1 : 0;
  }
  std::vector<std::size_t> peOf(cp.size(), 0);
  for (const ScheduledOccurrence& e : schedule.entries) peOf[e.node] = e.pe;

  std::vector<LinkLoad> load(fabric->links().size());
  for (std::size_t i = 0; i < cp.size(); ++i) {
    for (std::size_t p : cp.predecessors(i)) {
      if (actorIsControl[cp.node(p).actor.index()] != 0) continue;
      const std::size_t from = peOf[p];
      const std::size_t to = peOf[i];
      if (from == to || from >= fabric->peCount() || to >= fabric->peCount()) {
        continue;
      }
      for (std::uint32_t lid : fabric->route(from, to)) {
        load[lid].transfers += 1;
        load[lid].busy +=
            tpdf::platform::Topology::serviceTime(fabric->link(lid), 1);
      }
    }
  }
  return load;
}

}  // namespace tpdf::sched
