// Canonical period construction (Section III-D, Figure 5).
//
// The canonical period is the partial order of one iteration: a DAG whose
// vertices are, for each actor a, the q_a occurrences of a, and whose
// edges are (i) the sequential order between successive occurrences of
// one actor and (ii) token dependencies: occurrence n of a consumer
// depends on the earliest producer occurrence m whose cumulative
// production (plus initial tokens) covers the consumer's cumulative
// demand.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/context.hpp"
#include "csdf/repetition.hpp"
#include "graph/graph.hpp"
#include "graph/view.hpp"
#include "support/budget.hpp"
#include "support/json.hpp"
#include "symbolic/env.hpp"

namespace tpdf::sched {

/// One vertex of the canonical period: the k-th occurrence of an actor
/// (k is 0-based internally; Figure 5's "A1" is occurrence k=0).
struct Occurrence {
  graph::ActorId actor;
  std::int64_t k = 0;

  bool operator==(const Occurrence& o) const {
    return actor == o.actor && k == o.k;
  }
};

class CanonicalPeriod {
 public:
  /// Builds the canonical period of one iteration of `g` under `env`.
  /// Throws support::Error when the graph is not consistent.  A non-null
  /// `budget` is checkpointed once per occurrence node and per
  /// dependency-scan step during construction and may abort with
  /// support::BudgetExceeded.
  CanonicalPeriod(const graph::Graph& g, const symbolic::Environment& env,
                  support::Budget* budget = nullptr);

  /// Same through a shared context: reuses the memoized repetition
  /// vector and the valuation's integer rate tables instead of
  /// recomputing them.  The context (and its Graph) must outlive the
  /// period.
  CanonicalPeriod(const core::AnalysisContext& ctx,
                  const symbolic::Environment& env,
                  support::Budget* budget = nullptr);

  /// Fully caller-provided intermediates (race-free: never touches a
  /// context's mutable caches, which is what the concurrent sweep driver
  /// needs).  `rv` must be consistent and `rates` built over `view`
  /// under `env`; the view's Graph must outlive the period.
  CanonicalPeriod(const graph::GraphView& view,
                  const csdf::RepetitionVector& rv,
                  const graph::EvaluatedRates& rates,
                  const symbolic::Environment& env,
                  support::Budget* budget = nullptr);

  const graph::Graph& graph() const { return *graph_; }
  std::size_t size() const { return nodes_.size(); }
  const std::vector<Occurrence>& nodes() const { return nodes_; }

  /// Index of occurrence (actor, k).
  std::size_t indexOf(graph::ActorId a, std::int64_t k) const;
  const Occurrence& node(std::size_t i) const { return nodes_[i]; }

  const std::vector<std::size_t>& successors(std::size_t i) const {
    return succ_[i];
  }
  const std::vector<std::size_t>& predecessors(std::size_t i) const {
    return pred_[i];
  }

  /// True if node `to` directly depends on node `from`.
  bool dependsOn(std::size_t to, std::size_t from) const;

  /// Concrete repetition count of actor `a` under the build environment.
  std::int64_t repetitions(graph::ActorId a) const {
    return q_[a.index()];
  }

  /// "A1", "F2": the Figure 5 naming (1-based occurrence).
  std::string nodeName(std::size_t i) const;

  /// Execution time of occurrence i (from the actor's per-phase table).
  double execTime(std::size_t i) const;

  /// Nodes in a valid topological order (dependencies first).
  std::vector<std::size_t> topologicalOrder() const;

  /// {"size": N, "nodes": [{"name": "A1", "actor": "A", "k": 0,
  /// "execTime": 1.0}, ...], "edges": [[from, to], ...]} — the full
  /// iteration DAG of Figure 5, node indices as used by successors().
  support::json::Value toJson() const;

 private:
  void build(const graph::GraphView& view, const csdf::RepetitionVector& rv,
             const graph::EvaluatedRates& rates,
             const symbolic::Environment& env, support::Budget* budget);
  void addEdge(std::size_t from, std::size_t to);

  const graph::Graph* graph_;
  std::vector<std::int64_t> q_;
  std::vector<Occurrence> nodes_;
  std::vector<std::size_t> firstIndex_;  // per actor
  std::vector<std::vector<std::size_t>> succ_;
  std::vector<std::vector<std::size_t>> pred_;
};

}  // namespace tpdf::sched
