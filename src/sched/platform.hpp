// Platform model for the many-core scheduling heuristic.
//
// Stands in for the Kalray MPPA-256 clustered architecture the paper
// targets: a number of identical processing elements plus, optionally,
// an interconnect topology (platform/topology.hpp) describing how they
// talk to each other.  Without a topology the legacy model applies: a
// uniform message latency between distinct PEs (intra-PE communication
// is free).  The dedicated control PE mirrors Figure 5, where C1 is
// "mapped onto a separate processing element".
//
// Consumed by sched::listSchedule (list.hpp); `tpdfc map graph.tpdf
// pes=N` builds one with N worker PEs and the defaults below, and
// `--platform mesh:4x4,bw=8,lat=2` attaches a routed topology.
#pragma once

#include <cstddef>

namespace tpdf::platform {
class Topology;
}  // namespace tpdf::platform

namespace tpdf::sched {

struct Platform {
  /// Worker processing elements available to kernels.  When `topology`
  /// is set this must equal its PE count (listSchedule enforces it).
  std::size_t peCount = 4;
  /// Added to a dependency's ready time when producer and consumer are
  /// mapped on different PEs and no routed cost applies: always, when
  /// `topology` is null; for transfers involving the off-fabric
  /// dedicated control PE otherwise.
  double linkLatency = 0.0;
  /// Reserve one extra PE exclusively for control actors (the paper
  /// schedules control actors so that "the system acts as if [control
  /// token passing] was instantaneous").  The control PE sits off the
  /// fabric: `topology` covers the worker PEs only.
  bool dedicatedControlPe = true;
  /// Interconnect with per-link bandwidth/latency and precomputed
  /// routes; cross-PE dependencies then cost the uncontended traversal
  /// of their route instead of the uniform linkLatency.  Not owned;
  /// null = legacy uniform-latency model.
  const tpdf::platform::Topology* topology = nullptr;
};

}  // namespace tpdf::sched
