// Platform model for the many-core scheduling heuristic.
//
// Stands in for the Kalray MPPA-256 clustered architecture the paper
// targets: a number of identical processing elements with a uniform
// message latency between distinct PEs (intra-PE communication is free).
// The dedicated control PE mirrors Figure 5, where C1 is "mapped onto a
// separate processing element".
//
// Consumed by sched::listSchedule (list.hpp); `tpdfc map graph.tpdf
// pes=N` builds one with N worker PEs and the defaults below.
#pragma once

#include <cstddef>

namespace tpdf::sched {

struct Platform {
  /// Worker processing elements available to kernels.
  std::size_t peCount = 4;
  /// Added to a dependency's ready time when producer and consumer are
  /// mapped on different PEs.
  double linkLatency = 0.0;
  /// Reserve one extra PE exclusively for control actors (the paper
  /// schedules control actors so that "the system acts as if [control
  /// token passing] was instantaneous").
  bool dedicatedControlPe = true;
};

}  // namespace tpdf::sched
