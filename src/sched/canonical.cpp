#include "sched/canonical.hpp"

#include <algorithm>
#include <deque>

#include "support/error.hpp"

namespace tpdf::sched {

using graph::ActorId;
using graph::Graph;

CanonicalPeriod::CanonicalPeriod(const Graph& g,
                                 const symbolic::Environment& env,
                                 support::Budget* budget)
    : graph_(&g) {
  const graph::GraphView view(g);
  const csdf::RepetitionVector rv = csdf::computeRepetitionVector(view);
  if (!rv.consistent) {
    throw support::Error("cannot build canonical period: " + rv.diagnostic);
  }
  build(view, rv, graph::EvaluatedRates(view, env), env, budget);
}

CanonicalPeriod::CanonicalPeriod(const core::AnalysisContext& ctx,
                                 const symbolic::Environment& env,
                                 support::Budget* budget)
    : graph_(&ctx.graph()) {
  const csdf::RepetitionVector& rv = ctx.repetition();
  if (!rv.consistent) {
    throw support::Error("cannot build canonical period: " + rv.diagnostic);
  }
  build(ctx.view(), rv, ctx.rates(env), env, budget);
}

CanonicalPeriod::CanonicalPeriod(const graph::GraphView& view,
                                 const csdf::RepetitionVector& rv,
                                 const graph::EvaluatedRates& rates,
                                 const symbolic::Environment& env,
                                 support::Budget* budget)
    : graph_(&view.graph()) {
  if (!rv.consistent) {
    throw support::Error("cannot build canonical period: " + rv.diagnostic);
  }
  build(view, rv, rates, env, budget);
}

void CanonicalPeriod::build(const graph::GraphView& view,
                            const csdf::RepetitionVector& rv,
                            const graph::EvaluatedRates& rates,
                            const symbolic::Environment& env,
                            support::Budget* budget) {
  const Graph& g = *graph_;
  q_.resize(g.actorCount());
  firstIndex_.resize(g.actorCount());
  for (std::size_t i = 0; i < g.actorCount(); ++i) {
    q_[i] = rv.q[i].evaluateInt(env);
    if (q_[i] <= 0) {
      throw support::Error("non-positive repetition count for actor '" +
                           g.actor(ActorId(static_cast<std::uint32_t>(i)))
                               .name + "'");
    }
    firstIndex_[i] = nodes_.size();
    for (std::int64_t k = 0; k < q_[i]; ++k) {
      support::Budget::checkpoint(budget);
      nodes_.push_back({ActorId(static_cast<std::uint32_t>(i)), k});
    }
  }
  succ_.resize(nodes_.size());
  pred_.resize(nodes_.size());

  // (i) Sequential self-dependencies: an actor is one sequential process.
  for (std::size_t i = 0; i < g.actorCount(); ++i) {
    for (std::int64_t k = 0; k + 1 < q_[i]; ++k) {
      addEdge(firstIndex_[i] + static_cast<std::size_t>(k),
              firstIndex_[i] + static_cast<std::size_t>(k) + 1);
    }
  }

  // (ii) Token dependencies per channel, over the precomputed integer
  // rate tables (no RateSeq copies, no symbolic evaluation).
  for (const graph::Channel& c : g.channels()) {
    const ActorId src = view.sourceActor(c.id);
    const ActorId dst = view.destActor(c.id);
    if (src == dst) continue;  // self-loops order firings sequentially anyway

    std::int64_t produced = 0;   // X_src(m)
    std::int64_t m = 0;          // producer firings counted so far
    std::int64_t demanded = c.initialTokens;  // threshold to cover
    for (std::int64_t n = 0; n < q_[dst.index()]; ++n) {
      support::Budget::checkpoint(budget);
      demanded -= rates.at(c.dst, n);
      if (demanded >= 0) continue;  // covered by initial tokens
      // Advance the producer until cumulative production covers -demanded.
      while (produced < -demanded && m < q_[src.index()]) {
        produced += rates.at(c.src, m);
        ++m;
      }
      if (produced < -demanded) {
        throw support::Error(
            "canonical period: consumer '" + g.actor(dst).name +
            "' demands more tokens on '" + c.name +
            "' than one iteration produces");
      }
      addEdge(firstIndex_[src.index()] + static_cast<std::size_t>(m - 1),
              firstIndex_[dst.index()] + static_cast<std::size_t>(n));
    }
  }
}

void CanonicalPeriod::addEdge(std::size_t from, std::size_t to) {
  if (std::find(succ_[from].begin(), succ_[from].end(), to) !=
      succ_[from].end()) {
    return;
  }
  succ_[from].push_back(to);
  pred_[to].push_back(from);
}

std::size_t CanonicalPeriod::indexOf(ActorId a, std::int64_t k) const {
  if (k < 0 || k >= q_[a.index()]) {
    throw support::Error("occurrence " + std::to_string(k) +
                         " out of range for actor '" +
                         graph_->actor(a).name + "'");
  }
  return firstIndex_[a.index()] + static_cast<std::size_t>(k);
}

bool CanonicalPeriod::dependsOn(std::size_t to, std::size_t from) const {
  return std::find(pred_[to].begin(), pred_[to].end(), from) !=
         pred_[to].end();
}

std::string CanonicalPeriod::nodeName(std::size_t i) const {
  const Occurrence& o = nodes_[i];
  return graph_->actor(o.actor).name + std::to_string(o.k + 1);
}

double CanonicalPeriod::execTime(std::size_t i) const {
  const Occurrence& o = nodes_[i];
  return graph_->actor(o.actor).execTimeOfPhase(o.k);
}

std::vector<std::size_t> CanonicalPeriod::topologicalOrder() const {
  std::vector<std::size_t> inDegree(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    inDegree[i] = pred_[i].size();
  }
  std::deque<std::size_t> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (inDegree[i] == 0) ready.push_back(i);
  }
  std::vector<std::size_t> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const std::size_t i = ready.front();
    ready.pop_front();
    order.push_back(i);
    for (std::size_t s : succ_[i]) {
      if (--inDegree[s] == 0) ready.push_back(s);
    }
  }
  if (order.size() != nodes_.size()) {
    throw support::Error("canonical period contains a dependency cycle");
  }
  return order;
}

support::json::Value CanonicalPeriod::toJson() const {
  auto doc = support::json::Value::object();
  doc.set("size", nodes_.size());
  auto nodeArray = support::json::Value::array();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto entry = support::json::Value::object();
    entry.set("name", nodeName(i));
    entry.set("actor", graph_->actor(nodes_[i].actor).name);
    entry.set("k", nodes_[i].k);
    entry.set("execTime", execTime(i));
    nodeArray.push(std::move(entry));
  }
  doc.set("nodes", std::move(nodeArray));
  auto edges = support::json::Value::array();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (const std::size_t s : succ_[i]) {
      edges.push(support::json::Value::array().push(i).push(s));
    }
  }
  doc.set("edges", std::move(edges));
  return doc;
}

}  // namespace tpdf::sched
